package workload

import (
	"testing"

	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// buildLoaded creates a 2-CPU machine with the given workloads installed
// and runs it for the given span.
func buildLoaded(t *testing.T, cfg kernel.Config, span sim.Duration, mk func(k *kernel.Kernel) []Workload) *kernel.Kernel {
	t.Helper()
	k := kernel.New(cfg, 7)
	for _, w := range mk(k) {
		w.Start(k)
	}
	k.Start()
	k.Eng.Run(sim.Time(span))
	return k
}

func TestScpFloodGeneratesTraffic(t *testing.T) {
	var nic *dev.NIC
	var scp *ScpFlood
	k := buildLoaded(t, kernel.StandardLinux24(2, 1.0, false), 2*sim.Second, func(k *kernel.Kernel) []Workload {
		nic = dev.NewNIC(k, "eth0")
		disk := dev.NewDisk(k, "sda")
		scp = NewScpFlood(nic, disk)
		return []Workload{scp}
	})
	if scp.Transfers < 2 {
		t.Fatalf("transfers = %d, want ≥2 in 2s", scp.Transfers)
	}
	// ~11MB/s on the wire with handshake gaps between copies:
	// effective ≈4-5MB/s, so ≥6MB over 2s.
	if nic.RxBytes < 6<<20 {
		t.Fatalf("rx bytes = %d, want ≥6MB", nic.RxBytes)
	}
	if nic.RxIRQs < 1000 {
		t.Fatalf("rx irqs = %d, want thousands", nic.RxIRQs)
	}
	// The bottom halves must actually have burned CPU time.
	st := k.CPU(0).SoftirqTime + k.CPU(1).SoftirqTime
	if st < 50*sim.Millisecond {
		t.Fatalf("softirq time = %v, want substantial NET_RX work", st)
	}
	// sshd must have run.
	var sshd *kernel.Task
	for _, task := range k.Tasks() {
		if task.Name == "sshd" {
			sshd = task
		}
	}
	if sshd == nil || sshd.Switches == 0 {
		t.Fatal("sshd task never ran")
	}
}

func TestDiskNoiseGeneratesDiskAndLockTraffic(t *testing.T) {
	var disk *dev.Disk
	var dn *DiskNoise
	k := buildLoaded(t, kernel.StandardLinux24(2, 1.0, false), 2*sim.Second, func(k *kernel.Kernel) []Workload {
		disk = dev.NewDisk(k, "sda")
		dn = NewDiskNoise(disk)
		return []Workload{dn}
	})
	if dn.Iterations < 10 {
		t.Fatalf("iterations = %d", dn.Iterations)
	}
	if disk.Requests == 0 {
		t.Fatal("no disk traffic")
	}
	var acq uint64
	for _, l := range []string{"dcache", "inode", "pagecache"} {
		acq += k.NamedLock(l).Acquisitions
	}
	if acq == 0 {
		t.Fatal("no fs lock traffic")
	}
}

func TestStressKernelTasksAllRun(t *testing.T) {
	k := buildLoaded(t, kernel.StandardLinux24(2, 1.0, false), 3*sim.Second, func(k *kernel.Kernel) []Workload {
		disk := dev.NewDisk(k, "sda")
		return []Workload{NewStressKernel(disk)}
	})
	names := map[string]bool{}
	for _, task := range k.Tasks() {
		if task.Switches > 0 {
			names[task.Name] = true
		}
	}
	for _, want := range []string{"cc1-0", "cc1-1", "ttcp-tx", "ttcp-rx", "fifos-a", "fifos-b", "p3_fpu", "fs-stress", "crashme"} {
		if !names[want] {
			t.Errorf("stress task %q never ran (ran: %v)", want, names)
		}
	}
	// The suite must induce real kernel lock traffic and long syscalls.
	var acq uint64
	for _, l := range []string{"dcache", "inode", "pagecache"} {
		acq += k.NamedLock(l).Acquisitions
	}
	if acq < 100 {
		t.Fatalf("fs lock acquisitions = %d, want heavy traffic", acq)
	}
}

func TestStressKernelProducesLongResidencies(t *testing.T) {
	// On a stock kernel the FS stress must occasionally hold the CPU in
	// the kernel for ≥10ms stretches (the Figure 5 tail). Detect via
	// max observed fs lock hold + the residency cap actually reached.
	k := buildLoaded(t, kernel.StandardLinux24(1, 1.0, false), 10*sim.Second, func(k *kernel.Kernel) []Workload {
		return []Workload{NewStressKernel(nil)}
	})
	var worst sim.Duration
	for _, l := range []string{"dcache", "inode", "pagecache"} {
		if h := k.NamedLock(l).MaxHold; h > worst {
			worst = h
		}
	}
	if worst < 2*sim.Millisecond {
		t.Fatalf("max fs lock hold = %v, want multi-ms tail on stock kernel", worst)
	}
}

func TestStressKernelResidencyCappedOnRedHawk(t *testing.T) {
	// The same workload on RedHawk: critical sections are split, so no
	// fs lock hold should much exceed the cap (plus interrupt noise).
	cfg := kernel.RedHawk14(1, 1.0)
	k := buildLoaded(t, cfg, 10*sim.Second, func(k *kernel.Kernel) []Workload {
		return []Workload{NewStressKernel(nil)}
	})
	var worst sim.Duration
	for _, l := range []string{"dcache", "inode", "pagecache"} {
		if h := k.NamedLock(l).MaxHold; h > worst {
			worst = h
		}
	}
	if worst > cfg.CritSectionCap*3 {
		t.Fatalf("max fs lock hold = %v on RedHawk, want ≈ ≤%v", worst, cfg.CritSectionCap)
	}
}

func TestX11PerfDrivesGPU(t *testing.T) {
	var gpu *dev.GPU
	var x *X11Perf
	buildLoaded(t, kernel.StandardLinux24(2, 1.0, false), 2*sim.Second, func(k *kernel.Kernel) []Workload {
		gpu = dev.NewGPU(k, "nv")
		x = NewX11Perf(gpu)
		return []Workload{x}
	})
	if x.Batches < 20 {
		t.Fatalf("batches = %d, want steady stream", x.Batches)
	}
	if gpu.IRQ().Handled < 20 {
		t.Fatalf("gpu irqs = %d", gpu.IRQ().Handled)
	}
}

func TestX11PerfTakesBKLOnStock(t *testing.T) {
	k := buildLoaded(t, kernel.StandardLinux24(1, 1.0, false), sim.Second, func(k *kernel.Kernel) []Workload {
		gpu := dev.NewGPU(k, "nv")
		return []Workload{NewX11Perf(gpu)}
	})
	if k.BKL.Acquisitions == 0 {
		t.Fatal("X server ioctls must take the BKL on a stock kernel")
	}
}

func TestTTCPNetSteadyTraffic(t *testing.T) {
	var nic *dev.NIC
	buildLoaded(t, kernel.StandardLinux24(2, 1.0, false), 2*sim.Second, func(k *kernel.Kernel) []Workload {
		nic = dev.NewNIC(k, "eth0")
		return []Workload{NewTTCPNet(nic)}
	})
	total := nic.RxBytes + nic.TxBytes
	// 1.1MB/s for 2s ≈ 2.2MB.
	if total < 1<<20 || total > 4<<20 {
		t.Fatalf("ttcp moved %d bytes, want ≈2.2MB", total)
	}
}

func TestWorkloadNames(t *testing.T) {
	k := kernel.New(kernel.StandardLinux24(1, 1.0, false), 1)
	nic := dev.NewNIC(k, "eth0")
	disk := dev.NewDisk(k, "sda")
	gpu := dev.NewGPU(k, "nv")
	for _, w := range []Workload{
		NewScpFlood(nic, disk), NewDiskNoise(disk), NewStressKernel(disk),
		NewX11Perf(gpu), NewTTCPNet(nic),
	} {
		if w.Name() == "" {
			t.Errorf("%T has empty name", w)
		}
	}
}
