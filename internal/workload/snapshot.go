package workload

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Serialisable identities for the events and segment callbacks the
// workloads schedule; A0 is always the owning component's id.
var (
	// wl.scp-start: begin the next scp transfer.
	evScpStart = sim.RegisterEventKind("wl.scp-start")
	// wl.scp-deliver: the next coalesced receive batch.
	evScpDeliver = sim.RegisterEventKind("wl.scp-deliver")
	// wl.disknoise-flush: writeback submit OnDone; A1 = flush bytes.
	evDiskNoiseFlush = sim.RegisterEventKind("wl.disknoise-flush")
	// wl.ttcp-pump: the next wire batch of the ttcp-net load.
	evTTCPPump = sim.RegisterEventKind("wl.ttcp-pump")
)

// wlComponent fetches a registered component and checks its type.
func wlComponent[T kernel.SnapComponent](rc *kernel.RestoreContext, id uint64, kind string) (T, error) {
	comp := rc.K.Component(id)
	c, ok := comp.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("workload: event %s names component %d, which is a %T", kind, id, comp)
	}
	return c, nil
}

func init() {
	kernel.RegisterEventRebuild("wl.scp-start", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		s, err := wlComponent[*ScpFlood](rc, a0, "wl.scp-start")
		if err != nil {
			return nil, err
		}
		return s.startTransfer, nil
	})
	kernel.RegisterEventRebuild("wl.scp-deliver", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		s, err := wlComponent[*ScpFlood](rc, a0, "wl.scp-deliver")
		if err != nil {
			return nil, err
		}
		return s.deliver, nil
	})
	kernel.RegisterEventRebuild("wl.disknoise-flush", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		d, err := wlComponent[*DiskNoise](rc, a0, "wl.disknoise-flush")
		if err != nil {
			return nil, err
		}
		bytes := int(a1)
		return func() { d.flush(bytes) }, nil
	})
	kernel.RegisterEventRebuild("wl.ttcp-pump", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		t, err := wlComponent[*TTCPNet](rc, a0, "wl.ttcp-pump")
		if err != nil {
			return nil, err
		}
		return t.pump, nil
	})
}

// --- ScpFlood ---

// SnapName implements kernel.SnapComponent.
func (s *ScpFlood) SnapName() string { return "wl.scp-flood" }

// Snapshot implements kernel.SnapComponent.
func (s *ScpFlood) Snapshot(w *snapshot.Writer) error {
	w.Begin(s.SnapName())
	w.U64(1, s.rng.State())
	w.I64(2, int64(s.pendingBytes))
	w.I64(3, int64(s.remaining))
	w.U64(4, s.Transfers)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (s *ScpFlood) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(s.SnapName())
	s.rng.SetState(r.U64(1))
	s.pendingBytes = int(r.I64(2))
	s.remaining = int(r.I64(3))
	s.Transfers = r.U64(4)
	r.EndSection()
	return r.Err()
}

// --- DiskNoise ---

// SnapName implements kernel.SnapComponent.
func (d *DiskNoise) SnapName() string { return "wl.disknoise" }

// Snapshot implements kernel.SnapComponent.
func (d *DiskNoise) Snapshot(w *snapshot.Writer) error {
	w.Begin(d.SnapName())
	w.I64(1, int64(d.size))
	w.I64(2, int64(d.step))
	w.I64(3, int64(d.dirty))
	w.U64(4, d.Iterations)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (d *DiskNoise) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(d.SnapName())
	d.size = int(r.I64(1))
	d.step = int(r.I64(2))
	d.dirty = int(r.I64(3))
	d.Iterations = r.U64(4)
	r.EndSection()
	return r.Err()
}

func init() {
	snapshot.RegisterState(ScpFlood{}, snapshot.Manifest{
		"ImageBytes":      "skip: construction-fixed load parameter",
		"RateBytesPerSec": "skip: construction-fixed load parameter",
		"Gap":             "skip: construction-fixed load parameter",
		"BatchBytes":      "skip: construction-fixed load parameter",
		"nic":             "skip: construction back-pointer",
		"disk":            "skip: construction back-pointer",
		"k":               "skip: construction back-pointer",
		"rng":             "codec",
		"sshWake":         "skip: registered wait queue, serialised in kernel.waitqs",
		"id":              "skip: registration-order identity",
		"pendingBytes":    "codec",
		"remaining":       "codec",
		"Transfers":       "codec",
	})
	snapshot.RegisterState(DiskNoise{}, snapshot.Manifest{
		"disk":       "skip: construction back-pointer",
		"k":          "skip: construction back-pointer",
		"ioDone":     "skip: registered wait queue, serialised in kernel.waitqs",
		"id":         "skip: registration-order identity",
		"size":       "codec",
		"step":       "codec",
		"dirty":      "codec",
		"Iterations": "codec",
	})
	snapshot.RegisterState(StressKernel{}, snapshot.Manifest{
		"disk":         "skip: construction back-pointer",
		"ResidencyCap": "skip: construction-fixed load parameter",
		"Compilers":    "skip: construction-fixed load parameter",
	})
	snapshot.RegisterState(X11Perf{}, snapshot.Manifest{
		"gpu":     "skip: construction back-pointer",
		"Batches": "codec", // rides in the Xserver task's behavior words
	})
	snapshot.RegisterState(TTCPNet{}, snapshot.Manifest{
		"nic":             "skip: construction back-pointer",
		"RateBytesPerSec": "skip: construction-fixed load parameter",
		"BatchBytes":      "skip: construction-fixed load parameter",
		"k":               "skip: construction back-pointer",
		"rng":             "codec",
		"id":              "skip: registration-order identity",
		"dir":             "codec",
	})
	snapshot.RegisterState(phaseBehavior{}, snapshot.Manifest{
		"phase": "codec", // behavior state word 0
	})
	snapshot.RegisterState(scpSshd{}, snapshot.Manifest{
		"s": "skip: component back-pointer; mutable state in the wl.scp-flood section",
	})
	snapshot.RegisterState(diskNoiseBehavior{}, snapshot.Manifest{
		"d": "skip: component back-pointer; mutable state in the wl.disknoise section",
	})
	snapshot.RegisterState(nfsCompile{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"s":             "skip: component back-pointer, immutable parameters only",
	})
	snapshot.RegisterState(ttcpTx{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"dataReady":     "skip: registered wait queue, serialised in kernel.waitqs",
	})
	snapshot.RegisterState(ttcpRx{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"dataReady":     "skip: registered wait queue, serialised in kernel.waitqs",
	})
	snapshot.RegisterState(fifosA{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"fifo":          "skip: registered wait queue, serialised in kernel.waitqs",
	})
	snapshot.RegisterState(fifosB{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"fifo":          "skip: registered wait queue, serialised in kernel.waitqs",
	})
	snapshot.RegisterState(p3fpu{}, snapshot.Manifest{})
	snapshot.RegisterState(fsStress{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"s":             "skip: component back-pointer, immutable parameters only",
	})
	snapshot.RegisterState(crashme{}, snapshot.Manifest{
		"s": "skip: component back-pointer, immutable parameters only",
	})
	snapshot.RegisterState(xserver{}, snapshot.Manifest{
		"phaseBehavior": "codec",
		"x":             "skip: component back-pointer; Batches rides in the behavior words",
	})
	snapshot.RegisterState(ttcpNetProc{}, snapshot.Manifest{})
}
