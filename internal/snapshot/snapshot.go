// Package snapshot is the versioned binary codec behind checkpoint /
// restore of whole simulations (DESIGN.md §10). A snapshot is a
// self-describing sequence of named, length-prefixed sections; inside a
// section every field carries an explicit numeric tag and a wire type,
// and the whole image ends in an FNV-1a 64 content-hash trailer that
// OpenReader verifies before handing out a single byte.
//
// The format is deliberately boring: no reflection, no interface
// registry, no compression — just uvarints, zigzag, fixed64 bits and
// length-prefixed byte strings, written and read in matching order.
// Readers are strict and sticky-error: the first mismatch (wrong
// section name, wrong tag, wrong wire type, truncated payload) poisons
// the reader and every later getter returns zero values, so restore
// code can run a whole section and check Err() once at the end.
//
// Versioning policy: the header carries a format version; OpenReader
// refuses images from any other version. Snapshots are a debugging and
// warm-start artifact pinned to the code that wrote them — cross-version
// migration is explicitly out of scope (see DESIGN.md §10).
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the snapshot format version this build writes and the only
// one it accepts back.
const Version = 1

// magic opens every snapshot image.
const magic = "SNAP"

// Wire types, encoded in the low 3 bits of every field header byte; the
// field tag occupies the remaining high bits (header = tag<<3 | wire).
const (
	wireUvarint = 0 // U64, Bool
	wireZigzag  = 1 // I64 (and Time/Duration)
	wireFixed64 = 2 // F64 as IEEE-754 bits
	wireBytes   = 3 // Str, Bytes: uvarint length + raw bytes
)

func wireName(w byte) string {
	switch w {
	case wireUvarint:
		return "uvarint"
	case wireZigzag:
		return "zigzag"
	case wireFixed64:
		return "fixed64"
	case wireBytes:
		return "bytes"
	}
	return fmt.Sprintf("wire(%d)", w)
}

// fnvOffset / fnvPrime are the FNV-1a 64 parameters used for the
// content-hash trailer (the same hash family the golden figure hashes
// use).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv1a(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Writer builds a snapshot image. Sections must be strictly nested:
// Begin(name) ... typed fields ... End(), with no fields outside a
// section. Finish seals the image with the hash trailer.
type Writer struct {
	buf []byte
	// sec buffers the current section's payload; nil between sections.
	sec     []byte
	secName string
}

// NewWriter returns a Writer with the header already emitted.
func NewWriter() *Writer {
	w := &Writer{}
	w.buf = append(w.buf, magic...)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, Version)
	return w
}

// Begin opens a section. Sections do not nest.
func (w *Writer) Begin(name string) {
	if w.sec != nil {
		panic(fmt.Sprintf("snapshot: Begin(%q) inside open section %q", name, w.secName))
	}
	if name == "" {
		panic("snapshot: empty section name")
	}
	w.sec = make([]byte, 0, 256)
	w.secName = name
}

// End closes the current section, emitting name + length + payload.
func (w *Writer) End() {
	if w.sec == nil {
		panic("snapshot: End with no open section")
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.secName)))
	w.buf = append(w.buf, w.secName...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.sec)))
	w.buf = append(w.buf, w.sec...)
	w.sec = nil
	w.secName = ""
}

func (w *Writer) field(tag uint8, wire byte) {
	if w.sec == nil {
		panic(fmt.Sprintf("snapshot: field tag %d written outside a section", tag))
	}
	w.sec = append(w.sec, tag<<3|wire)
}

// U64 writes an unsigned field.
func (w *Writer) U64(tag uint8, v uint64) {
	w.field(tag, wireUvarint)
	w.sec = binary.AppendUvarint(w.sec, v)
}

// I64 writes a signed field (zigzag). sim.Time and sim.Duration go
// through here as int64s.
func (w *Writer) I64(tag uint8, v int64) {
	w.field(tag, wireZigzag)
	w.sec = binary.AppendUvarint(w.sec, uint64(v)<<1^uint64(v>>63))
}

// F64 writes a float field as its IEEE-754 bits (exact round-trip).
func (w *Writer) F64(tag uint8, v float64) {
	w.field(tag, wireFixed64)
	w.sec = binary.LittleEndian.AppendUint64(w.sec, math.Float64bits(v))
}

// Bool writes a boolean field.
func (w *Writer) Bool(tag uint8, v bool) {
	var u uint64
	if v {
		u = 1
	}
	w.U64(tag, u)
}

// Str writes a string field.
func (w *Writer) Str(tag uint8, s string) {
	w.field(tag, wireBytes)
	w.sec = binary.AppendUvarint(w.sec, uint64(len(s)))
	w.sec = append(w.sec, s...)
}

// Bytes writes a raw byte-string field.
func (w *Writer) Bytes(tag uint8, b []byte) {
	w.field(tag, wireBytes)
	w.sec = binary.AppendUvarint(w.sec, uint64(len(b)))
	w.sec = append(w.sec, b...)
}

// Finish seals the image: it appends the FNV-1a 64 trailer over
// everything written so far and returns the complete snapshot bytes.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	if w.sec != nil {
		panic(fmt.Sprintf("snapshot: Finish with section %q still open", w.secName))
	}
	h := fnv1a(fnvOffset, w.buf)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, h)
	out := w.buf
	w.buf = nil
	return out
}

// Reader decodes a snapshot image. All errors are sticky: after the
// first failure every getter returns the zero value and Err() reports
// the original cause.
type Reader struct {
	data []byte // remaining section stream (header and trailer stripped)
	sec  []byte // remaining payload of the current section; nil between sections
	name string // current section name
	err  error
}

// OpenReader validates the header, the version and the content-hash
// trailer, and returns a Reader positioned at the first section.
func OpenReader(data []byte) (*Reader, error) {
	const headerLen = len(magic) + 2
	const trailerLen = 8
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("snapshot: image truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads only version %d", v, Version)
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	want := binary.LittleEndian.Uint64(trailer)
	if got := fnv1a(fnvOffset, body); got != want {
		return nil, fmt.Errorf("snapshot: content hash mismatch: image says %016x, bytes hash to %016x", want, got)
	}
	return &Reader{data: body[headerLen:]}, nil
}

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		where := r.name
		if where == "" {
			where = "(between sections)"
		}
		r.err = fmt.Errorf("snapshot: section %s: %s", where, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) uvarint(buf []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, false
	}
	return v, buf[n:], true
}

// Section opens the next section, which must be named name. Any
// unconsumed bytes of the previous section are an error — restore code
// must account for every field it wrote.
func (r *Reader) Section(name string) {
	if r.err != nil {
		return
	}
	if r.sec != nil {
		r.fail("section closed with %d unread payload bytes", len(r.sec))
		return
	}
	nameLen, rest, ok := r.uvarint(r.data)
	if !ok || uint64(len(rest)) < nameLen {
		r.name = ""
		r.fail("want section %q, image exhausted", name)
		return
	}
	got := string(rest[:nameLen])
	rest = rest[nameLen:]
	payLen, rest, ok := r.uvarint(rest)
	if !ok || uint64(len(rest)) < payLen {
		r.name = ""
		r.fail("section %q payload truncated", got)
		return
	}
	if got != name {
		r.name = ""
		r.fail("want section %q, image has %q", name, got)
		return
	}
	r.sec = rest[:payLen]
	r.name = got
	r.data = rest[payLen:]
}

// EndSection closes the current section; leftover payload is an error.
func (r *Reader) EndSection() {
	if r.err != nil {
		return
	}
	if r.sec == nil {
		r.fail("EndSection with no open section")
		return
	}
	if len(r.sec) != 0 {
		r.fail("section %q closed with %d unread payload bytes", r.name, len(r.sec))
	}
	r.sec = nil
	r.name = ""
}

// Exhausted reports whether every section has been consumed.
func (r *Reader) Exhausted() bool {
	return r.err == nil && r.sec == nil && len(r.data) == 0
}

func (r *Reader) header(tag uint8, wire byte) bool {
	if r.err != nil {
		return false
	}
	if r.sec == nil {
		r.fail("field tag %d read outside a section", tag)
		return false
	}
	if len(r.sec) == 0 {
		r.fail("want field tag %d (%s), payload exhausted", tag, wireName(wire))
		return false
	}
	h := r.sec[0]
	r.sec = r.sec[1:]
	if h>>3 != tag || h&7 != wire {
		r.fail("want field tag %d (%s), image has tag %d (%s)",
			tag, wireName(wire), h>>3, wireName(h&7))
		return false
	}
	return true
}

// U64 reads an unsigned field with the given tag.
func (r *Reader) U64(tag uint8) uint64 {
	if !r.header(tag, wireUvarint) {
		return 0
	}
	v, rest, ok := r.uvarint(r.sec)
	if !ok {
		r.fail("field tag %d: bad uvarint", tag)
		return 0
	}
	r.sec = rest
	return v
}

// I64 reads a signed field with the given tag.
func (r *Reader) I64(tag uint8) int64 {
	if !r.header(tag, wireZigzag) {
		return 0
	}
	u, rest, ok := r.uvarint(r.sec)
	if !ok {
		r.fail("field tag %d: bad zigzag varint", tag)
		return 0
	}
	r.sec = rest
	return int64(u>>1) ^ -int64(u&1)
}

// F64 reads a float field with the given tag.
func (r *Reader) F64(tag uint8) float64 {
	if !r.header(tag, wireFixed64) {
		return 0
	}
	if len(r.sec) < 8 {
		r.fail("field tag %d: fixed64 truncated", tag)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.sec))
	r.sec = r.sec[8:]
	return v
}

// Bool reads a boolean field with the given tag.
func (r *Reader) Bool(tag uint8) bool {
	v := r.U64(tag)
	if r.err != nil {
		return false
	}
	if v > 1 {
		r.fail("field tag %d: boolean value %d", tag, v)
		return false
	}
	return v == 1
}

// Str reads a string field with the given tag.
func (r *Reader) Str(tag uint8) string {
	return string(r.Bytes(tag))
}

// Bytes reads a byte-string field with the given tag. The returned
// slice aliases the image; callers that retain it must copy.
func (r *Reader) Bytes(tag uint8) []byte {
	if !r.header(tag, wireBytes) {
		return nil
	}
	n, rest, ok := r.uvarint(r.sec)
	if !ok || uint64(len(rest)) < n {
		r.fail("field tag %d: byte string truncated", tag)
		return nil
	}
	r.sec = rest[n:]
	return rest[:n]
}

// Hash returns the FNV-1a 64 content hash of a finished image (the
// trailer value). It assumes data came from Finish; images too short to
// carry a trailer hash to zero.
func Hash(data []byte) uint64 {
	if len(data) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(data[len(data)-8:])
}
