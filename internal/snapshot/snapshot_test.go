package snapshot

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Begin("alpha")
	w.U64(1, 0)
	w.U64(2, math.MaxUint64)
	w.I64(3, -1)
	w.I64(4, math.MinInt64)
	w.F64(5, 3.141592653589793)
	w.F64(6, math.Inf(-1))
	w.Bool(7, true)
	w.Bool(8, false)
	w.Str(9, "hello, snapshot")
	w.Bytes(10, []byte{0, 1, 2, 0xff})
	w.Str(11, "")
	w.End()
	w.Begin("beta")
	w.U64(1, 42)
	w.End()
	img := w.Finish()

	r, err := OpenReader(img)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	r.Section("alpha")
	if got := r.U64(1); got != 0 {
		t.Errorf("U64(1) = %d", got)
	}
	if got := r.U64(2); got != math.MaxUint64 {
		t.Errorf("U64(2) = %d", got)
	}
	if got := r.I64(3); got != -1 {
		t.Errorf("I64(3) = %d", got)
	}
	if got := r.I64(4); got != math.MinInt64 {
		t.Errorf("I64(4) = %d", got)
	}
	if got := r.F64(5); got != 3.141592653589793 {
		t.Errorf("F64(5) = %v", got)
	}
	if got := r.F64(6); !math.IsInf(got, -1) {
		t.Errorf("F64(6) = %v", got)
	}
	if !r.Bool(7) || r.Bool(8) {
		t.Errorf("Bool fields wrong")
	}
	if got := r.Str(9); got != "hello, snapshot" {
		t.Errorf("Str(9) = %q", got)
	}
	if got := r.Bytes(10); string(got) != "\x00\x01\x02\xff" {
		t.Errorf("Bytes(10) = %v", got)
	}
	if got := r.Str(11); got != "" {
		t.Errorf("Str(11) = %q", got)
	}
	r.EndSection()
	r.Section("beta")
	if got := r.U64(1); got != 42 {
		t.Errorf("beta U64(1) = %d", got)
	}
	r.EndSection()
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if !r.Exhausted() {
		t.Fatalf("reader not exhausted")
	}
}

func TestHashTrailer(t *testing.T) {
	w := NewWriter()
	w.Begin("s")
	w.U64(1, 7)
	w.End()
	img := w.Finish()
	if Hash(img) == 0 {
		t.Fatalf("zero content hash")
	}
	// Flip one payload byte: the trailer must catch it.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x40
	if _, err := OpenReader(bad); err == nil || !strings.Contains(err.Error(), "content hash") {
		t.Fatalf("corrupted image opened: %v", err)
	}
}

func TestOpenReaderRejects(t *testing.T) {
	if _, err := OpenReader([]byte("short")); err == nil {
		t.Errorf("truncated image opened")
	}
	w := NewWriter()
	img := w.Finish()

	mangled := append([]byte(nil), img...)
	copy(mangled, "JUNK")
	if _, err := OpenReader(mangled); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic opened: %v", err)
	}

	future := append([]byte(nil), img...)
	binary.LittleEndian.PutUint16(future[4:], Version+1)
	// Re-seal so only the version check can object.
	body := future[:len(future)-8]
	binary.LittleEndian.PutUint64(future[len(future)-8:], fnv1a(fnvOffset, body))
	if _, err := OpenReader(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version opened: %v", err)
	}
}

func TestStrictFieldMismatch(t *testing.T) {
	w := NewWriter()
	w.Begin("s")
	w.U64(1, 7)
	w.End()
	img := w.Finish()

	r, _ := OpenReader(img)
	r.Section("s")
	if got := r.I64(1); got != 0 { // wrong wire type
		t.Errorf("mismatched read returned %d", got)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "want field tag 1") {
		t.Fatalf("wire mismatch not sticky: %v", err)
	}
	// Sticky: later reads stay zero without panicking.
	if r.U64(1) != 0 || r.Str(2) != "" {
		t.Errorf("reads after error not zero")
	}

	r2, _ := OpenReader(img)
	r2.Section("s")
	if r2.U64(2) != 0 { // wrong tag
		t.Errorf("mismatched tag returned a value")
	}
	if err := r2.Err(); err == nil {
		t.Fatalf("tag mismatch not recorded")
	}
}

func TestSectionErrors(t *testing.T) {
	w := NewWriter()
	w.Begin("a")
	w.U64(1, 1)
	w.End()
	w.Begin("b")
	w.End()
	img := w.Finish()

	// Wrong section name.
	r, _ := OpenReader(img)
	r.Section("zzz")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), `want section "zzz"`) {
		t.Errorf("wrong section name: %v", err)
	}

	// Leftover payload at EndSection.
	r2, _ := OpenReader(img)
	r2.Section("a")
	r2.EndSection()
	if err := r2.Err(); err == nil || !strings.Contains(err.Error(), "unread payload") {
		t.Errorf("leftover payload: %v", err)
	}

	// Reading past the last section.
	r3, _ := OpenReader(img)
	r3.Section("a")
	_ = r3.U64(1)
	r3.EndSection()
	r3.Section("b")
	r3.EndSection()
	if !r3.Exhausted() {
		t.Errorf("image should be exhausted")
	}
	r3.Section("c")
	if err := r3.Err(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("read past end: %v", err)
	}
}

func TestWriterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nested Begin", func() {
		w := NewWriter()
		w.Begin("a")
		w.Begin("b")
	})
	mustPanic("End outside section", func() { NewWriter().End() })
	mustPanic("field outside section", func() { NewWriter().U64(1, 1) })
	mustPanic("Finish with open section", func() {
		w := NewWriter()
		w.Begin("a")
		w.Finish()
	})
}
