package snapshot_test

import (
	"strings"
	"testing"

	"repro/internal/snapshot"

	// Imported for their RegisterState side effects: every package that
	// snapshots state registers its field manifests from init. Adding a
	// new snapshotting package without listing it here leaves its types
	// invisible to this test, so the companion minimum-count assertion
	// below also pins how many types the build is expected to register.
	_ "repro/internal/core"
	_ "repro/internal/dev"
	_ "repro/internal/kernel"
	_ "repro/internal/sim"
	_ "repro/internal/trace"
	_ "repro/internal/workload"
)

// TestManifestsExhaustive reflects over every registered snapshot state
// and enforces the manifest contract: each struct field is either
// "codec" (serialised by the type's Snapshot/Restore pair) or
// "skip: <non-empty justification>", no field is missing an entry, and
// no entry names a field that no longer exists. Growing a snapshotted
// struct without deciding what restore does with the new field fails
// here, not in a divergent resume three experiments later.
func TestManifestsExhaustive(t *testing.T) {
	states := snapshot.States()
	// Engine, kernel, devices, trace, workloads, core — far more than
	// this floor; the floor only guards against an import being dropped
	// and silently de-registering a whole package's manifests.
	if len(states) < 40 {
		t.Fatalf("only %d snapshot manifests registered; a registering package is missing from this test's imports", len(states))
	}
	for _, s := range states {
		fields := make(map[string]bool, s.Type.NumField())
		for i := 0; i < s.Type.NumField(); i++ {
			f := s.Type.Field(i)
			fields[f.Name] = true
			policy, ok := s.Manifest[f.Name]
			if !ok {
				t.Errorf("%v: field %s has no manifest entry (add \"codec\" or \"skip: <why>\")", s.Type, f.Name)
				continue
			}
			switch {
			case policy == "codec":
			case strings.HasPrefix(policy, "skip: ") && strings.TrimSpace(strings.TrimPrefix(policy, "skip: ")) != "":
			default:
				t.Errorf("%v: field %s has malformed policy %q (want \"codec\" or \"skip: <justification>\")", s.Type, f.Name, policy)
			}
		}
		for name := range s.Manifest {
			if !fields[name] {
				t.Errorf("%v: manifest names field %s, which no longer exists", s.Type, name)
			}
		}
	}
}
