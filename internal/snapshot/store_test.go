package snapshot

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreMemoryRoundTrip(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("00112233aabbccdd"); ok {
		t.Fatal("empty store returned a blob")
	}
	blob := []byte("figure bytes")
	if err := s.Put("00112233aabbccdd", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("00112233aabbccdd")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, blob)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestStoreCopyIsolation: the store must own its bytes — mutating the
// slice passed to Put or returned by Get must not corrupt the blob.
func TestStoreCopyIsolation(t *testing.T) {
	s, _ := NewStore("")
	blob := []byte("immutable")
	s.Put("aa", blob)
	blob[0] = 'X'
	got, _ := s.Get("aa")
	if string(got) != "immutable" {
		t.Fatalf("Put aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	again, _ := s.Get("aa")
	if string(again) != "immutable" {
		t.Fatalf("Get handed out an aliased slice: %q", again)
	}
}

func TestStoreRejectsUnsafeKeys(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	for _, key := range []string{"", "../escape", "ABCDEF", "a b", "deadbeef/../../x", "0x12"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an unsafe key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) returned a blob for an unsafe key", key)
		}
	}
}

// TestStoreDiskPersistence: a second store over the same directory sees
// blobs the first one wrote, and disk hits promote into memory.
func TestStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	first, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("post-boot image")
	if err := first.Put("deadbeef01234567", blob); err != nil {
		t.Fatal(err)
	}

	second, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() != 0 {
		t.Fatalf("fresh store pre-populated memory: Len = %d", second.Len())
	}
	got, ok := second.Get("deadbeef01234567")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("disk blob not visible to second store: %q, %v", got, ok)
	}
	if second.Len() != 1 {
		t.Fatal("disk hit was not promoted into memory")
	}

	// No torn temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".blob" {
			t.Fatalf("unexpected non-blob file in store dir: %s", e.Name())
		}
	}
}

// TestStoreConcurrent hammers one store from many goroutines with
// overlapping keys; run under -race this is the concurrency-safety
// proof. Content addressing means racing Puts of one key always carry
// the same bytes, so every Get must observe either a miss or exactly
// those bytes.
func TestStoreConcurrent(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blobFor := func(k int) []byte { return bytes.Repeat([]byte{byte(k)}, 64+k) }
	keyFor := func(k int) string { return fmt.Sprintf("%016x", 0xabc0+k) }

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % 8
				if err := s.Put(keyFor(k), blobFor(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(keyFor(k)); !ok || !bytes.Equal(got, blobFor(k)) {
					t.Errorf("Get(%s) = %d bytes, ok=%v; want blob %d", keyFor(k), len(got), ok, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if keys := s.Keys(); len(keys) != 8 || keys[0] != keyFor(0) {
		t.Fatalf("Keys = %v", keys)
	}
	s.cleanupTemp()
}
