package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a content-addressed blob store for simulation artifacts:
// figure result bytes and post-boot snapshot images, keyed by the
// FNV-1a content address of the inputs that produced them (the simd
// cache-key scheme, DESIGN.md §11). It is an in-memory map with an
// optional write-through directory, safe for concurrent use.
//
// Content addressing makes the store append-only in spirit: a key
// either misses or returns the one immutable blob that inputs hash to,
// so there is no invalidation protocol and a Put that races a Get can
// only ever install the same bytes. Disk writes are atomic
// (temp file + rename) so a crashed or killed process never leaves a
// torn blob for the next one to trust.
type Store struct {
	mu  sync.RWMutex
	mem map[string][]byte
	dir string
}

// NewStore opens a store. dir == "" keeps blobs in memory only;
// otherwise blobs write through to dir (created if missing) and later
// stores over the same directory see them.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("snapshot: store dir: %w", err)
		}
	}
	return &Store{mem: make(map[string][]byte), dir: dir}, nil
}

// validKey enforces the content-address alphabet (lower-case hex, as
// produced by the FNV-1a "%016x" hashes used throughout the repo) so a
// key can never traverse outside the store directory.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("snapshot: invalid store key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("snapshot: invalid store key %q (want lower-case hex)", key)
		}
	}
	return nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".blob")
}

// Get returns the blob addressed by key. The returned slice is the
// caller's to keep: it is never aliased by later Puts or other Gets. A
// disk hit is promoted into memory.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	s.mu.RLock()
	blob, ok := s.mem[key]
	s.mu.RUnlock()
	if !ok && s.dir != "" {
		disk, err := os.ReadFile(s.path(key))
		if err != nil {
			return nil, false
		}
		s.mu.Lock()
		// A concurrent Put may have landed; same key means same bytes,
		// so either copy is fine — keep the resident one.
		if resident, raced := s.mem[key]; raced {
			disk = resident
		} else {
			s.mem[key] = disk
		}
		s.mu.Unlock()
		blob, ok = disk, true
	}
	if !ok {
		return nil, false
	}
	out := make([]byte, len(blob))
	copy(out, blob)
	return out, true
}

// Put installs blob under key, copying it so the caller's slice stays
// theirs. With a directory configured the blob is written to a
// temporary file and renamed into place, so readers (including other
// processes) only ever observe complete blobs.
func (s *Store) Put(key string, blob []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	own := make([]byte, len(blob))
	copy(own, blob)
	s.mu.Lock()
	_, existed := s.mem[key]
	if !existed {
		s.mem[key] = own
	}
	s.mu.Unlock()
	if existed || s.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: store put: %w", err)
	}
	if _, err := tmp.Write(own); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: store put: %w", err)
	}
	return nil
}

// Len reports the number of blobs resident in memory (not the on-disk
// population, which may be larger until Gets promote it).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Keys returns the resident content addresses in sorted order, for
// stats endpoints and tests.
func (s *Store) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// cleanupTemp removes leftover temp files from a previous crashed
// writer. Called lazily by tests; blobs never depend on it because a
// rename either happened or the temp file is garbage.
func (s *Store) cleanupTemp() {
	if s.dir == "" {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "put-") && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}
