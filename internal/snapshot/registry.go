package snapshot

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Every struct whose state a snapshot captures registers a field
// manifest here: for each struct field, either "codec" (the field is
// written/restored by the type's Snapshot/Restore pair) or
// "skip: <why the field provably does not need restoring>". The
// exhaustiveness test (statecheck_test.go) reflects over the registered
// types and fails when a field is added without a manifest entry — so
// growing a snapshotted struct without deciding what restore does with
// the new field is a compile-adjacent error, not silent drift.
//
// The manifest is documentation with teeth: skips must justify
// themselves, and stale entries (naming fields that no longer exist)
// fail the same test.

// Manifest maps a struct's field names to their snapshot policy:
// "codec", or "skip: <justification>".
type Manifest map[string]string

// RegisteredState is one (type, manifest) pair for the statecheck test.
type RegisteredState struct {
	Type     reflect.Type
	Manifest Manifest
}

var (
	statesMu sync.Mutex
	states   []RegisteredState
	stateSet map[reflect.Type]bool
)

// RegisterState records the snapshot field manifest for the struct
// behind v (a value or pointer of the type). Each type registers once,
// normally from the owning package's init; double registration and
// non-struct types panic.
func RegisterState(v interface{}, m Manifest) {
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("snapshot: RegisterState of non-struct %v", t))
	}
	statesMu.Lock()
	defer statesMu.Unlock()
	if stateSet == nil {
		stateSet = make(map[reflect.Type]bool)
	}
	if stateSet[t] {
		panic(fmt.Sprintf("snapshot: duplicate RegisterState for %v", t))
	}
	stateSet[t] = true
	states = append(states, RegisteredState{Type: t, Manifest: m})
}

// States returns the registered manifests sorted by type name, for the
// exhaustiveness test.
func States() []RegisteredState {
	statesMu.Lock()
	defer statesMu.Unlock()
	out := make([]RegisteredState, len(states))
	copy(out, states)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Type.String() < out[j].Type.String()
	})
	return out
}
