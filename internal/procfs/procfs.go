// Package procfs implements an in-memory /proc-style file tree with
// read/write callbacks. The kernel model mounts its control files here —
// /proc/irq/<n>/smp_affinity and the paper's /proc/shield/{procs,irqs,
// ltmr,all} — so that tools and examples configure the simulated system
// exactly the way a system administrator configures RedHawk: by writing
// hex masks into proc files.
package procfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// ReadFunc produces the current contents of a file.
type ReadFunc func() string

// WriteFunc applies a write to a file; it returns an error for invalid
// input (the simulated kernel's -EINVAL).
type WriteFunc func(data string) error

// node is a file or directory in the tree.
type node struct {
	children map[string]*node // non-nil for directories
	read     ReadFunc
	write    WriteFunc
}

// FS is the tree root. The zero value is not usable; call New.
type FS struct {
	root *node
}

// New returns an empty file system.
func New() *FS {
	return &FS{root: &node{children: map[string]*node{}}}
}

// clean canonicalises p to a slash-rooted path.
func clean(p string) string {
	p = path.Clean("/" + strings.TrimSpace(p))
	return p
}

// lookup walks to p; it returns nil when absent.
func (fs *FS) lookup(p string) *node {
	cur := fs.root
	p = clean(p)
	if p == "/" {
		return cur
	}
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur.children == nil {
			return nil
		}
		next, ok := cur.children[part]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// mkdirAll creates (or walks) the directory chain for p and returns it.
func (fs *FS) mkdirAll(p string) (*node, error) {
	cur := fs.root
	p = clean(p)
	if p == "/" {
		return cur, nil
	}
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur.children == nil {
			return nil, fmt.Errorf("procfs: %q is a file, not a directory", part)
		}
		next, ok := cur.children[part]
		if !ok {
			next = &node{children: map[string]*node{}}
			cur.children[part] = next
		}
		cur = next
	}
	if cur.children == nil {
		return nil, fmt.Errorf("procfs: %q is a file, not a directory", p)
	}
	return cur, nil
}

// Register installs a file at p with the given callbacks. A nil write
// makes the file read-only (writes return an error, like EACCES). The
// parent directories are created as needed. Registering over an existing
// file replaces it.
func (fs *FS) Register(p string, read ReadFunc, write WriteFunc) error {
	p = clean(p)
	dir, base := path.Split(p)
	if base == "" {
		return fmt.Errorf("procfs: cannot register root")
	}
	parent, err := fs.mkdirAll(dir)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[base]; ok && existing.children != nil {
		return fmt.Errorf("procfs: %q is a directory", p)
	}
	parent.children[base] = &node{read: read, write: write}
	return nil
}

// MustRegister is Register that panics on error; for init-time wiring.
func (fs *FS) MustRegister(p string, read ReadFunc, write WriteFunc) {
	if err := fs.Register(p, read, write); err != nil {
		panic(err)
	}
}

// Read returns the contents of the file at p.
func (fs *FS) Read(p string) (string, error) {
	n := fs.lookup(p)
	if n == nil {
		return "", fmt.Errorf("procfs: %s: no such file", clean(p))
	}
	if n.children != nil {
		return "", fmt.Errorf("procfs: %s: is a directory", clean(p))
	}
	if n.read == nil {
		return "", fmt.Errorf("procfs: %s: not readable", clean(p))
	}
	return n.read(), nil
}

// Write applies data to the file at p.
func (fs *FS) Write(p, data string) error {
	n := fs.lookup(p)
	if n == nil {
		return fmt.Errorf("procfs: %s: no such file", clean(p))
	}
	if n.children != nil {
		return fmt.Errorf("procfs: %s: is a directory", clean(p))
	}
	if n.write == nil {
		return fmt.Errorf("procfs: %s: permission denied", clean(p))
	}
	return n.write(data)
}

// List returns the sorted names in the directory at p; directories carry a
// trailing slash.
func (fs *FS) List(p string) ([]string, error) {
	n := fs.lookup(p)
	if n == nil {
		return nil, fmt.Errorf("procfs: %s: no such directory", clean(p))
	}
	if n.children == nil {
		return nil, fmt.Errorf("procfs: %s: not a directory", clean(p))
	}
	names := make([]string, 0, len(n.children))
	for name, child := range n.children {
		if child.children != nil {
			name += "/"
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Exists reports whether p names a file or directory.
func (fs *FS) Exists(p string) bool { return fs.lookup(p) != nil }

// Walk visits every file (not directory) under p in sorted order.
func (fs *FS) Walk(p string, visit func(path string)) error {
	n := fs.lookup(p)
	if n == nil {
		return fmt.Errorf("procfs: %s: no such path", clean(p))
	}
	walk(clean(p), n, visit)
	return nil
}

func walk(p string, n *node, visit func(string)) {
	if n.children == nil {
		visit(p)
		return
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		walk(path.Join(p, name), n.children[name], visit)
	}
}
