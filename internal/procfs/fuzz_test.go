package procfs

import "testing"

// FuzzPaths throws arbitrary paths at the tree: no panics, and
// registered files stay reachable under their canonical path.
func FuzzPaths(f *testing.F) {
	for _, seed := range []string{"/proc/shield/all", "a//b/../c", "", "/", "..", "///x"} {
		f.Add(seed, seed)
	}
	f.Fuzz(func(t *testing.T, reg, probe string) {
		fs := New()
		err := fs.Register(reg, func() string { return "v" }, nil)
		// Whatever happened, these must not panic.
		fs.Read(probe)
		fs.Write(probe, "x")
		fs.List(probe)
		fs.Exists(probe)
		if err == nil {
			if got, rerr := fs.Read(reg); rerr != nil || got != "v" {
				t.Fatalf("registered %q but read failed: %q, %v", reg, got, rerr)
			}
		}
	})
}
