package procfs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRegisterReadWrite(t *testing.T) {
	fs := New()
	val := "3\n"
	err := fs.Register("/proc/irq/8/smp_affinity",
		func() string { return val },
		func(data string) error { val = data; return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/proc/irq/8/smp_affinity")
	if err != nil || got != "3\n" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if err := fs.Write("/proc/irq/8/smp_affinity", "2\n"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Read("/proc/irq/8/smp_affinity"); got != "2\n" {
		t.Fatalf("after write, Read = %q", got)
	}
}

func TestReadOnlyFile(t *testing.T) {
	fs := New()
	fs.MustRegister("/proc/version", func() string { return "RedHawk 1.4\n" }, nil)
	if err := fs.Write("/proc/version", "x"); err == nil {
		t.Fatal("write to read-only file should fail")
	}
	if got, _ := fs.Read("/proc/version"); got != "RedHawk 1.4\n" {
		t.Fatalf("Read = %q", got)
	}
}

func TestMissingPaths(t *testing.T) {
	fs := New()
	if _, err := fs.Read("/nope"); err == nil {
		t.Fatal("read of missing file should fail")
	}
	if err := fs.Write("/nope", "x"); err == nil {
		t.Fatal("write of missing file should fail")
	}
	if _, err := fs.List("/nope"); err == nil {
		t.Fatal("list of missing directory should fail")
	}
	if fs.Exists("/nope") {
		t.Fatal("Exists on missing path")
	}
}

func TestDirectorySemantics(t *testing.T) {
	fs := New()
	fs.MustRegister("/proc/shield/procs", func() string { return "0\n" }, nil)
	fs.MustRegister("/proc/shield/irqs", func() string { return "0\n" }, nil)
	if _, err := fs.Read("/proc/shield"); err == nil {
		t.Fatal("reading a directory should fail")
	}
	if err := fs.Write("/proc/shield", "x"); err == nil {
		t.Fatal("writing a directory should fail")
	}
	names, err := fs.List("/proc/shield")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "irqs" || names[1] != "procs" {
		t.Fatalf("List = %v", names)
	}
	names, err = fs.List("/proc")
	if err != nil || len(names) != 1 || names[0] != "shield/" {
		t.Fatalf("List /proc = %v, %v", names, err)
	}
}

func TestRegisterConflicts(t *testing.T) {
	fs := New()
	fs.MustRegister("/a/b", func() string { return "" }, nil)
	// Registering a file over a directory must fail.
	fs.MustRegister("/d/e/f", func() string { return "" }, nil)
	if err := fs.Register("/d/e", func() string { return "" }, nil); err == nil {
		t.Fatal("registering a file over a directory should fail")
	}
	// Registering a file under a file must fail.
	if err := fs.Register("/a/b/c", func() string { return "" }, nil); err == nil {
		t.Fatal("registering under a file should fail")
	}
	// Re-registering the same file replaces it.
	fs.MustRegister("/a/b", func() string { return "new" }, nil)
	if got, _ := fs.Read("/a/b"); got != "new" {
		t.Fatalf("replacement failed: %q", got)
	}
}

func TestWriteCallbackError(t *testing.T) {
	fs := New()
	sentinel := errors.New("EINVAL")
	fs.MustRegister("/f", func() string { return "" }, func(string) error { return sentinel })
	if err := fs.Write("/f", "bad"); !errors.Is(err, sentinel) {
		t.Fatalf("Write error = %v, want sentinel", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	fs.MustRegister("/proc/shield/all", func() string { return "ok" }, nil)
	for _, p := range []string{"proc/shield/all", "/proc//shield/all", " /proc/shield/all ", "/proc/shield/../shield/all"} {
		if got, err := fs.Read(p); err != nil || got != "ok" {
			t.Fatalf("Read(%q) = %q, %v", p, got, err)
		}
	}
}

func TestWalk(t *testing.T) {
	fs := New()
	for _, p := range []string{"/proc/shield/all", "/proc/shield/irqs", "/proc/irq/8/smp_affinity"} {
		fs.MustRegister(p, func() string { return "" }, nil)
	}
	var visited []string
	if err := fs.Walk("/proc", func(p string) { visited = append(visited, p) }); err != nil {
		t.Fatal(err)
	}
	want := []string{"/proc/irq/8/smp_affinity", "/proc/shield/all", "/proc/shield/irqs"}
	if fmt.Sprint(visited) != fmt.Sprint(want) {
		t.Fatalf("Walk visited %v, want %v", visited, want)
	}
	if err := fs.Walk("/missing", func(string) {}); err == nil {
		t.Fatal("walk of missing path should fail")
	}
}

func TestRegisterRootFails(t *testing.T) {
	fs := New()
	if err := fs.Register("/", func() string { return "" }, nil); err == nil {
		t.Fatal("registering root should fail")
	}
}

func TestListRoot(t *testing.T) {
	fs := New()
	fs.MustRegister("/proc/x", func() string { return "" }, nil)
	names, err := fs.List("/")
	if err != nil || len(names) != 1 || !strings.HasSuffix(names[0], "/") {
		t.Fatalf("List / = %v, %v", names, err)
	}
}
