// Package report renders experiment results as terminal charts shaped
// like the paper's figures: log-scale histogram bars for the interrupt
// response plots (Figures 5–7) and variance histograms for the
// determinism plots (Figures 1–4).
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// barGlyph is the fill used for histogram bars.
const barGlyph = "█"

// Chart renders a histogram as horizontal bars, one row per non-empty
// bin. If logScale is set, bar lengths are proportional to log10(count),
// matching the paper's log-count axes.
type Chart struct {
	Title string
	// Width is the maximum bar width in runes (default 50).
	Width int
	// LogScale uses log10(count) bar lengths.
	LogScale bool
	// Unit divides bin edges for display (e.g. sim.Millisecond) and
	// UnitName labels it.
	Unit     sim.Duration
	UnitName string
	// MaxRows caps the number of rendered rows; the densest rows are
	// kept and a summary line notes the omission (0 = unlimited).
	MaxRows int
}

// Render draws the histogram.
func (c Chart) Render(h *metrics.Histogram) string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	unit := c.Unit
	if unit <= 0 {
		unit = sim.Millisecond
	}
	unitName := c.UnitName
	if unitName == "" {
		unitName = "ms"
	}
	rows := h.Rows()
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	if len(rows) == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}

	omitted := 0
	if c.MaxRows > 0 && len(rows) > c.MaxRows {
		// Keep the most populated rows, preserving order.
		kept := topRows(rows, c.MaxRows)
		omitted = len(rows) - len(kept)
		rows = kept
	}

	maxCount := uint64(1)
	for _, r := range rows {
		if r.Count > maxCount {
			maxCount = r.Count
		}
	}
	scale := func(n uint64) int {
		if n == 0 {
			return 0
		}
		if c.LogScale {
			l := math.Log10(float64(n)) + 1
			lm := math.Log10(float64(maxCount)) + 1
			w := int(l / lm * float64(width))
			if w < 1 {
				w = 1
			}
			return w
		}
		w := int(float64(n) / float64(maxCount) * float64(width))
		if w < 1 {
			w = 1
		}
		return w
	}
	for _, r := range rows {
		label := fmt.Sprintf("≤%9.3f%s", float64(r.Upper)/float64(unit), unitName)
		if r.IsOverflow {
			label = fmt.Sprintf(" %9.3f%s+", float64(r.Upper)/float64(unit), unitName)
		}
		fmt.Fprintf(&b, "%s |%-*s %d\n", label, width, strings.Repeat(barGlyph, scale(r.Count)), r.Count)
	}
	if omitted > 0 {
		fmt.Fprintf(&b, "  (%d sparsely-populated rows omitted)\n", omitted)
	}
	if c.LogScale {
		b.WriteString("  (bar length ∝ log₁₀ count, as in the paper's figures)\n")
	}
	return b.String()
}

// topRows keeps the n most-populated rows, preserving bin order.
func topRows(rows []metrics.BinRow, n int) []metrics.BinRow {
	if len(rows) <= n {
		return rows
	}
	// Find the count threshold via a simple selection.
	counts := make([]uint64, len(rows))
	for i, r := range rows {
		counts[i] = r.Count
	}
	// Insertion-sort a copy descending (row counts are small sets).
	sorted := append([]uint64(nil), counts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	threshold := sorted[n-1]
	out := make([]metrics.BinRow, 0, n)
	taken := 0
	for _, r := range rows {
		if taken < n && (r.Count > threshold || (r.Count == threshold)) {
			out = append(out, r)
			taken++
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// JitterChart renders a Figures 1–4 style report: variance histogram plus
// the legend.
func JitterChart(title string, r metrics.JitterReport) string {
	h := r.VarianceHistogram(10*sim.Millisecond, 100)
	var b strings.Builder
	b.WriteString(Chart{
		Title: title, Width: 40, Unit: sim.Millisecond, UnitName: "ms",
	}.Render(h))
	b.WriteString(r.Legend())
	return b.String()
}
