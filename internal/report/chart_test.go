package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func sample() *metrics.Histogram {
	h := metrics.NewHistogram(100*sim.Microsecond, 1000)
	for i := 0; i < 10000; i++ {
		h.Add(50 * sim.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Add(450 * sim.Microsecond)
	}
	h.Add(5 * sim.Millisecond)
	return h
}

func TestChartRender(t *testing.T) {
	out := Chart{Title: "fig", Width: 40, LogScale: true, Unit: sim.Millisecond, UnitName: "ms"}.Render(sample())
	if !strings.Contains(out, "fig") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "10000") || !strings.Contains(out, "100") {
		t.Fatalf("missing counts:\n%s", out)
	}
	if !strings.Contains(out, barGlyph) {
		t.Fatal("no bars rendered")
	}
	if !strings.Contains(out, "log₁₀") {
		t.Fatal("missing log-scale note")
	}
	// Log scale: the 10000 bar must be longer than the 100 bar but not
	// 100x longer.
	lines := strings.Split(out, "\n")
	var big, mid int
	for _, l := range lines {
		n := strings.Count(l, barGlyph)
		if strings.Contains(l, "10000") {
			big = n
		} else if strings.HasSuffix(strings.TrimSpace(l), " 100") {
			mid = n
		}
	}
	if big <= mid || big > mid*4 {
		t.Fatalf("log scaling wrong: big=%d mid=%d", big, mid)
	}
}

func TestChartLinearScale(t *testing.T) {
	out := Chart{Width: 40}.Render(sample())
	lines := strings.Split(out, "\n")
	var big, mid int
	for _, l := range lines {
		n := strings.Count(l, barGlyph)
		if strings.Contains(l, "10000") {
			big = n
		} else if strings.HasSuffix(strings.TrimSpace(l), " 100") {
			mid = n
		}
	}
	if big != 40 || mid != 1 {
		t.Fatalf("linear scaling wrong: big=%d mid=%d", big, mid)
	}
}

func TestChartEmpty(t *testing.T) {
	h := metrics.NewHistogram(sim.Millisecond, 4)
	out := Chart{}.Render(h)
	if !strings.Contains(out, "no samples") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestChartMaxRows(t *testing.T) {
	h := metrics.NewHistogram(sim.Millisecond, 100)
	for i := 0; i < 50; i++ {
		for j := 0; j <= i; j++ {
			h.Add(sim.Duration(i) * sim.Millisecond)
		}
	}
	out := Chart{MaxRows: 10}.Render(h)
	bars := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, barGlyph) {
			bars++
		}
	}
	if bars != 10 {
		t.Fatalf("rendered %d rows, want 10", bars)
	}
	if !strings.Contains(out, "omitted") {
		t.Fatal("missing omission note")
	}
}

func TestChartOverflowRow(t *testing.T) {
	h := metrics.NewHistogram(sim.Millisecond, 2)
	h.Add(500 * sim.Microsecond)
	h.Add(10 * sim.Millisecond) // overflow
	out := Chart{}.Render(h)
	if !strings.Contains(out, "+") {
		t.Fatalf("overflow row not marked:\n%s", out)
	}
}

func TestJitterChart(t *testing.T) {
	r := metrics.NewJitterReport([]sim.Duration{
		sim.Second, sim.Second + 20*sim.Millisecond, sim.Second + 150*sim.Millisecond,
	})
	out := JitterChart("Figure X", r)
	for _, want := range []string{"Figure X", "ideal:", "jitter:", barGlyph} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
