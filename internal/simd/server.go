package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Config sizes one Server.
type Config struct {
	// Workers is the simulation worker-pool size (the number of
	// scenarios that run concurrently). Defaults to runner.Workers(0),
	// the same GOMAXPROCS-derived default the CLI uses.
	Workers int
	// QueueDepth bounds the admission queue; a POST that finds it full
	// is refused with 429 + Retry-After instead of blocking. Defaults
	// to 4× the worker count.
	QueueDepth int
	// BudgetVirtualMS is the per-request cost ceiling in virtual
	// milliseconds (core.Scenario.CostVirtualMS); an oversized request
	// is refused with 422 before any work starts. <= 0 means unlimited.
	BudgetVirtualMS int64
	// FigureWorkers caps the replication fan-out inside one figure run.
	// It can never change result bytes; it only trades latency of one
	// job against throughput of many. Defaults to 1.
	FigureWorkers int
	// CacheDir, when set, write-through persists result blobs and
	// post-boot images so restarts (and sibling processes) warm-start.
	CacheDir string
}

func (c Config) withDefaults() Config {
	c.Workers = runner.Workers(c.Workers)
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.FigureWorkers <= 0 {
		c.FigureWorkers = 1
	}
	return c
}

// job is one admitted scenario run.
type job struct {
	id       string
	scenario core.Scenario
	cache    string // CacheMiss for the runner; joiners observe CacheJoin

	// mutable under Server.mu
	state  JobState
	result []byte
	err    error
	subs   []chan JobStatus

	done chan struct{} // closed after result/err are final
}

// Server is the simulation service: admission queue, worker pool,
// content-addressed result cache and warm-start image store. Create
// with New, serve via Handler, stop with Drain.
type Server struct {
	cfg     Config
	results *snapshot.Store
	images  *snapshot.Store

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // scenario key -> job, for request coalescing
	draining bool
	queue    chan *job

	cancel      context.CancelFunc
	workersDone chan struct{}

	nextID atomic.Uint64
	hits, misses, joins, completed, failed,
	rejQueue, rejBudget, warmStarts, coldBoots atomic.Int64

	// execute runs one scenario on a worker. Tests substitute it to
	// simulate slow or failing runs; the default is runScenario.
	execute func(s core.Scenario, pool *sim.EventPool) ([]byte, error)
}

// New builds a Server and starts its worker pool. The pool is built on
// runner.MapSeededPooledCtx: each pool slot is one replication of a
// "drain the queue" function, which hands every worker its own
// sim.EventPool to reuse across the simulations it runs.
func New(cfg Config) (*Server, error) {
	srv, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	srv.start()
	return srv, nil
}

// newServer builds the server without starting workers, so tests can
// substitute execute before any worker goroutine exists.
func newServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	results, err := snapshot.NewStore(storeSubdir(cfg.CacheDir, "results"))
	if err != nil {
		return nil, err
	}
	images, err := snapshot.NewStore(storeSubdir(cfg.CacheDir, "images"))
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:         cfg,
		results:     results,
		images:      images,
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		queue:       make(chan *job, cfg.QueueDepth),
		workersDone: make(chan struct{}),
	}
	srv.execute = srv.runScenario
	return srv, nil
}

// start launches the worker pool.
func (s *Server) start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go func() {
		defer close(s.workersDone)
		// One "replication" per pool slot; each drains the shared queue
		// until Drain closes it. Cancellation (hard stop) lets in-flight
		// runs finish but stops idle slots promptly.
		_, _ = runner.MapSeededPooledCtx(ctx, s.cfg.Workers, 1, s.cfg.Workers,
			func(i int, seed uint64, pool *sim.EventPool) int {
				for j := range s.queue {
					s.run(j, pool)
				}
				return 0
			})
	}()
}

func storeSubdir(dir, name string) string {
	if dir == "" {
		return ""
	}
	return dir + "/" + name
}

// Drain stops admission (new POSTs get 503) and waits for every queued
// and in-flight job to finish. Idempotent; this is the SIGTERM path.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.workersDone
	s.cancel()
}

// run executes one job on a pool worker and publishes its result.
func (s *Server) run(j *job, pool *sim.EventPool) {
	s.setState(j, StateRunning)
	out, err := s.execute(j.scenario, pool)
	if err == nil {
		if perr := s.results.Put(j.scenario.Key(), out); perr != nil {
			err = perr
		}
	}

	s.mu.Lock()
	j.result, j.err = out, err
	if err != nil {
		j.state = StateFailed
		s.failed.Add(1)
	} else {
		j.state = StateDone
		s.completed.Add(1)
	}
	delete(s.inflight, j.scenario.Key())
	st := s.statusLocked(j)
	subs := j.subs
	j.subs = nil
	s.mu.Unlock()

	close(j.done)
	for _, ch := range subs {
		ch <- st
		close(ch)
	}
}

// runScenario is the default execute: figures run cold through the
// replication pipeline; continuations warm-start from a cached
// post-boot image when one exists, else boot cold and cache the image.
// Warm and cold produce byte-identical results (core's cold/warm pin),
// so the choice is invisible in the content-addressed result.
func (s *Server) runScenario(sc core.Scenario, pool *sim.EventPool) ([]byte, error) {
	if sc.Kind != core.KindContinuation {
		return core.RunScenario(sc, s.cfg.FigureWorkers)
	}
	ik, err := sc.ImageKey()
	if err != nil {
		return nil, err
	}
	if img, ok := s.images.Get(ik); ok {
		out, err := core.RunContinuationWarm(sc, img, pool)
		if err == nil {
			s.warmStarts.Add(1)
			return out, nil
		}
		// A bad cached image must not fail the request; fall through to
		// a cold boot, which will overwrite it.
	}
	out, img, err := core.RunContinuationCold(sc, pool)
	if err != nil {
		return nil, err
	}
	s.coldBoots.Add(1)
	if err := s.images.Put(ik, img); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Server) setState(j *job, st JobState) {
	s.mu.Lock()
	j.state = st
	status := s.statusLocked(j)
	subs := append([]chan JobStatus(nil), j.subs...)
	s.mu.Unlock()
	for _, ch := range subs {
		ch <- status
	}
}

// statusLocked renders a JobStatus; callers hold s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		Figure:        j.scenario.Figure,
		Key:           j.scenario.Key(),
		Cache:         j.cache,
		CostVirtualMS: j.scenario.CostVirtualMS(),
	}
	if j.state == StateDone {
		st.ResultHash = core.HashBytes(j.result)
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/figures", s.handleFigures)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeResult(w http.ResponseWriter, cache string, body []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Simd-Cache", cache)
	w.Header().Set("X-Simd-Result-Hash", core.HashBytes(body))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleScenarios is admission: resolve, budget-check, cache-check,
// coalesce onto identical in-flight work, else enqueue. ?wait=1 blocks
// for the result bytes; otherwise the response is a JobStatus.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request body: " + err.Error()})
		return
	}
	sc, err := core.ResolveScenario(req.Figure, req.Scale, req.Seed, req.RunForMS)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := runner.CheckBudget(sc.CostVirtualMS(), s.cfg.BudgetVirtualMS, "virtual-ms"); err != nil {
		s.rejBudget.Add(1)
		var be *runner.BudgetError
		errors.As(err, &be)
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error(), Requested: be.Requested, Budget: be.Budget})
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	key := sc.Key()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining"})
		return
	}
	// Served already? The store is immutable and content-addressed, so
	// this is exactly what a fresh run would return.
	if body, ok := s.results.Get(key); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		if wait {
			s.writeResult(w, CacheHit, body)
			return
		}
		writeJSON2(w, http.StatusOK, CacheHit, JobStatus{
			ID: "cached", State: StateDone, Figure: sc.Figure, Key: key,
			Cache: CacheHit, CostVirtualMS: sc.CostVirtualMS(), ResultHash: core.HashBytes(body),
		})
		return
	}
	// Identical scenario already in flight? Join it instead of running
	// the same pure function twice.
	if jb, ok := s.inflight[key]; ok {
		st := s.statusLocked(jb)
		s.mu.Unlock()
		s.joins.Add(1)
		st.Cache = CacheJoin
		if wait {
			s.waitAndWrite(w, r, jb, CacheJoin)
			return
		}
		writeJSON2(w, http.StatusAccepted, CacheJoin, st)
		return
	}
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextID.Add(1)),
		scenario: sc,
		cache:    CacheMiss,
		state:    StateQueued,
		done:     make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.rejQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "admission queue full; retry"})
		return
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.misses.Add(1)

	if wait {
		s.waitAndWrite(w, r, j, CacheMiss)
		return
	}
	writeJSON2(w, http.StatusAccepted, CacheMiss, st)
}

// writeJSON2 is writeJSON plus the cache-disposition header, so even
// JSON status responses carry X-Simd-Cache.
func writeJSON2(w http.ResponseWriter, code int, cache string, v any) {
	w.Header().Set("X-Simd-Cache", cache)
	writeJSON(w, code, v)
}

// waitAndWrite blocks until j finishes (or the client goes away) and
// writes its result bytes with the given cache disposition.
func (s *Server) waitAndWrite(w http.ResponseWriter, r *http.Request, j *job, cache string) {
	select {
	case <-j.done:
	case <-r.Context().Done():
		return
	}
	s.mu.Lock()
	body, err := j.result, j.err
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	s.writeResult(w, cache, body)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	s.mu.Lock()
	state, body, err := j.state, j.result, j.err
	cache := j.cache
	s.mu.Unlock()
	switch state {
	case StateDone:
		s.writeResult(w, cache, body)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, errorBody{Error: "job still " + string(state)})
	}
}

// handleEvents streams job state transitions as server-sent events
// (event: state, data: JobStatus JSON), ending after the terminal one.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	ch := make(chan JobStatus, 8)
	s.mu.Lock()
	first := s.statusLocked(j)
	terminal := j.state == StateDone || j.state == StateFailed
	if !terminal {
		j.subs = append(j.subs, ch)
	}
	s.mu.Unlock()

	emit := func(st JobStatus) bool {
		b, _ := json.Marshal(st)
		if _, err := fmt.Fprintf(w, "event: state\ndata: %s\n\n", b); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	if !emit(first) || terminal {
		return
	}
	for {
		select {
		case st, open := <-ch:
			if !open {
				return
			}
			if !emit(st) {
				return
			}
			if st.State == StateDone || st.State == StateFailed {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Scenarios())
}

// Snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Joins:          s.joins.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		RejectedQueue:  s.rejQueue.Load(),
		RejectedBudget: s.rejBudget.Load(),
		WarmStarts:     s.warmStarts.Load(),
		ColdBoots:      s.coldBoots.Load(),
		ResidentBlobs:  s.results.Len(),
		ResidentImages: s.images.Len(),
		Draining:       draining,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
