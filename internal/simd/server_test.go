package simd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// testServer builds a server, optionally substituting execute, and
// returns it with an httptest front end. Drain/Close are registered as
// cleanups in reverse order so in-flight handlers finish first.
func testServer(t *testing.T, cfg Config, execute func(core.Scenario, *sim.EventPool) ([]byte, error)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if execute != nil {
		srv.execute = execute
	}
	srv.start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(srv.Drain)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path string, req ScenarioRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCachedRerequestIsByteIdentical: the same scenario POSTed twice
// returns byte-identical bytes, the second from the cache with
// X-Simd-Cache: hit, and both matching the serial in-process oracle.
func TestCachedRerequestIsByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2}, nil)
	req := ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 7, RunForMS: 10}

	first := post(t, ts, "/v1/scenarios?wait=1", req)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first POST status %d", first.StatusCode)
	}
	if c := first.Header.Get("X-Simd-Cache"); c != CacheMiss {
		t.Fatalf("first POST cache %q, want miss", c)
	}
	firstBody := readAll(t, first)

	second := post(t, ts, "/v1/scenarios?wait=1", req)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second POST status %d", second.StatusCode)
	}
	if c := second.Header.Get("X-Simd-Cache"); c != CacheHit {
		t.Fatalf("second POST cache %q, want hit", c)
	}
	secondBody := readAll(t, second)
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("cached re-request returned different bytes")
	}

	sc, err := core.ResolveScenario(req.Figure, req.Scale, req.Seed, req.RunForMS)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.RunScenario(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBody, oracle) {
		t.Fatalf("served bytes diverge from serial oracle:\nserved: %s\noracle: %s", firstBody, oracle)
	}
	if h := second.Header.Get("X-Simd-Result-Hash"); h != core.HashBytes(oracle) {
		t.Fatalf("result hash header %q, want %q", h, core.HashBytes(oracle))
	}
}

// TestInflightJoin: a duplicate POSTed while the first identical
// scenario is still running coalesces onto it (cache "join") and both
// observers read the same bytes from one execution.
func TestInflightJoin(t *testing.T) {
	release := make(chan struct{})
	var runs int
	srv, ts := testServer(t, Config{Workers: 1}, func(sc core.Scenario, pool *sim.EventPool) ([]byte, error) {
		runs++ // single worker: no lock needed
		<-release
		return []byte("payload:" + sc.Figure), nil
	})
	req := ScenarioRequest{Figure: core.ScenarioRefShielded, Seed: 3, RunForMS: 5}

	type res struct {
		cache string
		body  []byte
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := post(t, ts, "/v1/scenarios?wait=1", req)
			results <- res{resp.Header.Get("X-Simd-Cache"), readAll(t, resp)}
		}()
	}
	// Wait until one is running and the other has joined it.
	for deadline := time.Now().Add(5 * time.Second); srv.joins.Load() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("duplicate never joined the in-flight job")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	got := map[string]res{}
	for i := 0; i < 2; i++ {
		r := <-results
		got[r.cache] = r
	}
	if _, ok := got[CacheMiss]; !ok {
		t.Fatalf("no miss among dispositions %v", got)
	}
	if _, ok := got[CacheJoin]; !ok {
		t.Fatalf("no join among dispositions %v", got)
	}
	if !bytes.Equal(got[CacheMiss].body, got[CacheJoin].body) {
		t.Fatal("joiner read different bytes than the runner")
	}
	if runs != 1 {
		t.Fatalf("scenario executed %d times, want 1", runs)
	}
}

// TestQueueFullBackpressure: with the one worker busy and the queue
// full, the next distinct scenario is refused with 429 + Retry-After —
// admission never blocks the client.
func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	srv, ts := testServer(t, Config{Workers: 1, QueueDepth: 1}, func(core.Scenario, *sim.EventPool) ([]byte, error) {
		<-release
		return []byte("x"), nil
	})
	defer close(release)

	// First request occupies the worker; second sits in the queue.
	for i, fig := range []string{core.ScenarioRefStock, core.ScenarioRefShielded} {
		resp := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: fig, Seed: uint64(i), RunForMS: 5})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("request %d status %d, want 202", i, resp.StatusCode)
		}
		readAll(t, resp)
	}
	// Give the worker a moment to dequeue the first job so the queue
	// genuinely holds the second.
	for deadline := time.Now().Add(5 * time.Second); len(srv.queue) < 1; {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 99, RunForMS: 5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	readAll(t, resp)
	if srv.Stats().RejectedQueue < 1 {
		t.Fatal("rejection not counted")
	}
}

// TestBudgetRefusal: a scenario whose virtual-ms cost exceeds the
// configured budget gets a 422 carrying the typed budget numbers, and
// nothing is enqueued or run.
func TestBudgetRefusal(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1, BudgetVirtualMS: 100}, func(sc core.Scenario, pool *sim.EventPool) ([]byte, error) {
		if sc.RunFor >= 500*sim.Millisecond {
			t.Error("over-budget scenario reached a worker")
		}
		return []byte("ok"), nil
	})
	resp := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 1, RunForMS: 500})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(readAll(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Requested != 540 || eb.Budget != 100 {
		t.Fatalf("budget body %+v, want requested 540 budget 100", eb)
	}
	if srv.Stats().RejectedBudget != 1 {
		t.Fatal("budget rejection not counted")
	}

	// Within budget passes admission.
	ok := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 1, RunForMS: 10})
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("within-budget status %d, want 202", ok.StatusCode)
	}
	readAll(t, ok)
}

// TestDrainFinishesInflight: Drain refuses new work with 503 but waits
// for queued and running jobs to complete — no job is abandoned.
func TestDrainFinishesInflight(t *testing.T) {
	release := make(chan struct{})
	srv, err := newServer(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.execute = func(core.Scenario, *sim.EventPool) ([]byte, error) {
		<-release
		return []byte("drained"), nil
	}
	srv.start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 5, RunForMS: 5})
	var st JobStatus
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()
	// Drain must block while the job is in flight.
	select {
	case <-drained:
		t.Fatal("Drain returned with a job still running")
	case <-time.After(50 * time.Millisecond):
	}
	// New work is refused while draining.
	for deadline := time.Now().Add(5 * time.Second); ; {
		r := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefShielded, Seed: 5, RunForMS: 5})
		code := r.StatusCode
		readAll(t, r)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still admitting (status %d)", code)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after jobs finished")
	}

	// The in-flight job finished with its result intact.
	r := ts.Client()
	jr, err := r.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("post-drain result status %d", jr.StatusCode)
	}
	if body := readAll(t, jr); string(body) != "drained" {
		t.Fatalf("post-drain result %q", body)
	}
	if !srv.Stats().Draining {
		t.Fatal("stats do not report draining")
	}
}

// TestJobLifecycleAndErrors covers the polling API: 202 while queued,
// status/result endpoints, 404s, 400s on malformed requests, and a
// failing scenario surfacing as state=failed + 500 on result.
func TestJobLifecycleAndErrors(t *testing.T) {
	fail := fmt.Errorf("synthetic scenario failure")
	_, ts := testServer(t, Config{Workers: 1}, func(sc core.Scenario, pool *sim.EventPool) ([]byte, error) {
		if sc.Seed == 666 {
			return nil, fail
		}
		return []byte("ok:" + sc.Figure), nil
	})

	// Malformed body and unknown figure.
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}
	readAll(t, resp)
	resp = post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: "fig99", Scale: 1, Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown figure status %d", resp.StatusCode)
	}
	readAll(t, resp)

	// Unknown job IDs.
	for _, path := range []string{"/v1/jobs/job-999", "/v1/jobs/job-999/result", "/v1/jobs/job-999/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, r.StatusCode)
		}
		readAll(t, r)
	}

	// Failing job: poll to terminal state, result is 500.
	resp = post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 666, RunForMS: 5})
	var st JobStatus
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readAll(t, r), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateFailed {
			break
		}
		if st.State == StateDone {
			t.Fatal("failing scenario reported done")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(st.Error, "synthetic") {
		t.Fatalf("failed status error %q", st.Error)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed job result status %d, want 500", r.StatusCode)
	}
	readAll(t, r)

	// Figures catalogue.
	r, err = http.Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	var figs []string
	if err := json.Unmarshal(readAll(t, r), &figs); err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(core.ServedScenarios()) {
		t.Fatalf("figures catalogue %v", figs)
	}
}

// TestEventsStream: the SSE endpoint emits state transitions ending in
// the terminal state, as parseable event/data frames.
func TestEventsStream(t *testing.T) {
	release := make(chan struct{})
	_, ts := testServer(t, Config{Workers: 1}, func(core.Scenario, *sim.EventPool) ([]byte, error) {
		<-release
		return []byte("streamed"), nil
	})
	resp := post(t, ts, "/v1/scenarios", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 8, RunForMS: 5})
	var st JobStatus
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	close(release)

	var states []JobState
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("unparseable SSE data %q: %v", line, err)
		}
		states = append(states, ev.State)
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("SSE states %v, want trailing done", states)
	}
}

// TestWarmStartSharesBootImage: two continuation windows over the same
// (machine, seed) run one cold boot and one warm start, and the warm
// result is byte-identical to the serial cold oracle.
func TestWarmStartSharesBootImage(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1}, nil)
	for _, runFor := range []int{10, 25} {
		resp := post(t, ts, "/v1/scenarios?wait=1", ScenarioRequest{Figure: core.ScenarioRefShielded, Seed: 11, RunForMS: runFor})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run_for=%d status %d", runFor, resp.StatusCode)
		}
		body := readAll(t, resp)
		sc, _ := core.ResolveScenario(core.ScenarioRefShielded, 0, 11, runFor)
		oracle, err := core.RunScenario(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, oracle) {
			t.Fatalf("run_for=%d served bytes diverge from cold oracle", runFor)
		}
	}
	stats := srv.Stats()
	if stats.ColdBoots != 1 || stats.WarmStarts != 1 {
		t.Fatalf("cold=%d warm=%d, want exactly one of each", stats.ColdBoots, stats.WarmStarts)
	}
	if stats.ResidentImages != 1 {
		t.Fatalf("resident images %d, want 1", stats.ResidentImages)
	}
}

// TestStatsAndHealth: healthz flips to 503 on drain; stats counters
// move with traffic.
func TestStatsAndHealth(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1}, nil)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
	readAll(t, r)

	resp := post(t, ts, "/v1/scenarios?wait=1", ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 2, RunForMS: 5})
	readAll(t, resp)
	var stats Stats
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, sr), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 1 || stats.Completed != 1 || stats.ResidentBlobs != 1 {
		t.Fatalf("stats after one run: %+v", stats)
	}

	srv.Drain()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", hr.StatusCode)
	}
	readAll(t, hr)
}
