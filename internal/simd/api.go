// Package simd is the fleet-scale simulation service: a long-running
// HTTP/JSON front end over the deterministic figure pipeline. Clients
// POST a scenario (figure + scale + seed, or a reference-machine
// continuation), get a job ID, poll or stream progress, and fetch
// result bytes that are bit-identical to a local rtsim run of the same
// scenario.
//
// Everything rests on the repo's determinism contract: a result is a
// pure function of the scenario's canonical encoding (core.Scenario),
// so results are content-addressed by the FNV-1a hash of that encoding
// — the same hash family the reprocheck goldens pin — and a cache hit
// is provably the bytes a fresh run would produce. Concurrency lives
// entirely in this package and internal/runner; the simulation code it
// calls stays single-threaded and pure.
package simd

import "repro/internal/core"

// ScenarioRequest is the POST /v1/scenarios body. Figure names either
// a paper figure (fig1..fig7, attrib-causes, with Scale) or a reference
// continuation (ref-stock/ref-shielded, with RunForMS). Workers caps
// the replication fan-out of the run; it is deliberately absent from
// the cache key because worker count can never change result bytes.
type ScenarioRequest struct {
	Figure   string  `json:"figure"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     uint64  `json:"seed"`
	RunForMS int     `json:"run_for_ms,omitempty"`
	Workers  int     `json:"workers,omitempty"`
}

// JobState is the lifecycle of one admitted scenario run.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Cache dispositions reported in JobStatus.Cache and the X-Simd-Cache
// response header.
const (
	CacheHit  = "hit"  // served straight from the content-addressed store
	CacheMiss = "miss" // ran fresh (result then enters the store)
	CacheJoin = "join" // coalesced onto an identical in-flight job
)

// JobStatus is the JSON shape of GET /v1/jobs/{id} and of the 202
// response to an asynchronous POST.
type JobStatus struct {
	ID            string   `json:"id"`
	State         JobState `json:"state"`
	Figure        string   `json:"figure"`
	Key           string   `json:"key"`
	Cache         string   `json:"cache"`
	CostVirtualMS int64    `json:"cost_virtual_ms"`
	ResultHash    string   `json:"result_hash,omitempty"`
	Error         string   `json:"error,omitempty"`
}

// Stats is the GET /v1/stats payload: cache and admission counters
// since process start, plus store residency.
type Stats struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Joins          int64 `json:"joins"`
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	RejectedQueue  int64 `json:"rejected_queue"`
	RejectedBudget int64 `json:"rejected_budget"`
	WarmStarts     int64 `json:"warm_starts"`
	ColdBoots      int64 `json:"cold_boots"`
	ResidentBlobs  int   `json:"resident_blobs"`
	ResidentImages int   `json:"resident_images"`
	Draining       bool  `json:"draining"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error     string `json:"error"`
	Requested int64  `json:"requested,omitempty"`
	Budget    int64  `json:"budget,omitempty"`
}

// Scenarios lists the scenario ids the service accepts (GET /v1/figures).
func Scenarios() []string { return core.ServedScenarios() }
