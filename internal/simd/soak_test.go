package simd

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
)

// soakScenario is one distinct scenario in the soak mix.
type soakScenario struct {
	req    ScenarioRequest
	oracle []byte // serial in-process result, computed up front
}

// TestSoakConcurrentServing is the fleet-scale stress pin, run under
// -race in the CI soak job: well over a thousand concurrent scenario
// requests with heavy duplication hammer one server, and every single
// response must be byte-identical to the serial single-threaded oracle
// for its scenario. Duplicates must be served from the cache or
// coalesced onto in-flight work — each distinct scenario executes
// exactly once — and warm-started continuations must hash equal to
// cold runs.
func TestSoakConcurrentServing(t *testing.T) {
	// The scenario mix: every figure family at tiny scale, plus
	// reference continuations whose windows deliberately overlap on
	// (machine, seed) so boot images get shared.
	var scenarios []soakScenario
	for _, fig := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "attrib-causes"} {
		scenarios = append(scenarios, soakScenario{req: ScenarioRequest{Figure: fig, Scale: 0.01, Seed: 7}})
	}
	scenarios = append(scenarios,
		soakScenario{req: ScenarioRequest{Figure: "fig5", Scale: 0.01, Seed: 8}},
		soakScenario{req: ScenarioRequest{Figure: "fig7", Scale: 0.01, Seed: 8}},
	)
	for _, fig := range []string{core.ScenarioRefStock, core.ScenarioRefShielded} {
		for _, seed := range []uint64{1, 2} {
			for _, runFor := range []int{10, 20} {
				scenarios = append(scenarios, soakScenario{req: ScenarioRequest{Figure: fig, Seed: seed, RunForMS: runFor}})
			}
		}
	}
	if len(scenarios) != 18 {
		t.Fatalf("scenario mix has %d entries, want 18", len(scenarios))
	}

	// Serial oracle pass: the single-threaded ground truth every
	// concurrent response is compared against.
	for i := range scenarios {
		r := scenarios[i].req
		sc, err := core.ResolveScenario(r.Figure, r.Scale, r.Seed, r.RunForMS)
		if err != nil {
			t.Fatalf("%s: %v", r.Figure, err)
		}
		out, err := core.RunScenario(sc, 1)
		if err != nil {
			t.Fatalf("%s oracle: %v", r.Figure, err)
		}
		scenarios[i].oracle = out
	}

	srv, ts := testServer(t, Config{Workers: 4, QueueDepth: 64}, nil)

	const (
		clients     = 40
		perClient   = 30 // 1200 requests total, ≥1000 required
		totalReqs   = clients * perClient
		distinctCnt = 18
	)
	var wg sync.WaitGroup
	errs := make(chan error, totalReqs)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Stride the mix differently per client so duplicates
				// overlap both in flight and after completion.
				s := scenarios[(g*7+i)%len(scenarios)]
				resp := post(t, ts, "/v1/scenarios?wait=1", s.req)
				body := readAll(t, resp)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d req %d (%s): status %d: %s", g, i, s.req.Figure, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, s.oracle) {
					errs <- fmt.Errorf("client %d req %d (%s seed %d run_for %d): served bytes diverge from serial oracle",
						g, i, s.req.Figure, s.req.Seed, s.req.RunForMS)
					return
				}
				if h := resp.Header.Get("X-Simd-Result-Hash"); h != core.HashBytes(s.oracle) {
					errs <- fmt.Errorf("client %d req %d (%s): result hash header %s != oracle %s", g, i, s.req.Figure, h, core.HashBytes(s.oracle))
					return
				}
				switch resp.Header.Get("X-Simd-Cache") {
				case CacheHit, CacheMiss, CacheJoin:
				default:
					errs <- fmt.Errorf("client %d req %d: missing cache disposition header", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	stats := srv.Stats()
	// Exactly-once execution: each distinct scenario missed once; every
	// other request was a hit or an in-flight join.
	if stats.Misses != distinctCnt || stats.Completed != distinctCnt {
		t.Fatalf("misses=%d completed=%d, want %d each (exactly-once execution)", stats.Misses, stats.Completed, distinctCnt)
	}
	if stats.Hits+stats.Joins != totalReqs-distinctCnt {
		t.Fatalf("hits=%d joins=%d, want %d duplicates served without re-running", stats.Hits, stats.Joins, totalReqs-distinctCnt)
	}
	if stats.Hits == 0 {
		t.Fatal("cache hit-rate was zero across the soak")
	}
	if stats.Failed != 0 || stats.RejectedQueue != 0 || stats.RejectedBudget != 0 {
		t.Fatalf("unexpected failures/rejections: %+v", stats)
	}
	if stats.ResidentBlobs != distinctCnt {
		t.Fatalf("resident result blobs %d, want %d", stats.ResidentBlobs, distinctCnt)
	}
	// 8 continuation scenarios over 4 distinct (machine, seed) boots:
	// every one either booted cold or warm-started from a shared image.
	if stats.ColdBoots+stats.WarmStarts != 8 {
		t.Fatalf("cold=%d warm=%d, want 8 continuation executions", stats.ColdBoots, stats.WarmStarts)
	}
	if stats.ResidentImages != 4 {
		t.Fatalf("resident boot images %d, want 4", stats.ResidentImages)
	}

	// Warm-start hash equality through the serving path: a fresh window
	// over an already-imaged boot is guaranteed to warm-start now, and
	// its bytes must equal the cold serial oracle.
	preWarm := srv.Stats().WarmStarts
	req := ScenarioRequest{Figure: core.ScenarioRefStock, Seed: 1, RunForMS: 30}
	sc, _ := core.ResolveScenario(req.Figure, 0, req.Seed, req.RunForMS)
	oracle, err := core.RunScenario(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts, "/v1/scenarios?wait=1", req)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm continuation status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, oracle) {
		t.Fatal("warm-started continuation diverges from cold serial oracle")
	}
	if srv.Stats().WarmStarts != preWarm+1 {
		t.Fatal("fresh window over an imaged boot did not warm-start")
	}
}
