package dev

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// rcimWaitReturn is the driver's straight-to-user return path after a
// blocking wait: syscall exit plus one PCI read of the mapped count
// register. It is the last leg of the shielded response bound.
const rcimWaitReturn = 1200 * sim.Nanosecond //simlint:region run rcim-wait

// RCIM models Concurrent's Real-Time Clock and Interrupt Module PCI card
// (§4, §6.3): a high-resolution periodic timer with a memory-mapped count
// register, and a fully multithreaded driver whose ioctl wait path does
// not need the Big Kernel Lock.
//
// The count register is loaded with the period, decremented by the
// hardware, and generates an interrupt at zero, automatically reloading.
// Because the register is mapped into the program, reading it costs almost
// nothing — which is why the paper's second interrupt response test uses
// it to timestamp instead of a syscall.
type RCIM struct {
	k   *kernel.Kernel
	irq *kernel.IRQLine
	wq  *kernel.WaitQueue
	id  uint64
	// exts are the attached external inputs, in creation order.
	exts []*ExternalInput

	period   sim.Duration
	running  bool
	lastFire sim.Time
	fires    uint64
}

// ExternalInput is one of the RCIM's edge-triggered external interrupt
// inputs (§4: the card "provides the ability to connect external
// edge-triggered device interrupts to the system"). Each input has its
// own kernel interrupt line and wait queue, so an external real-world
// signal can be affined to a shielded CPU exactly like the card's timer.
type ExternalInput struct {
	Name string
	irq  *kernel.IRQLine
	wq   *kernel.WaitQueue
	k    *kernel.Kernel

	// Edges counts signalled edges.
	Edges uint64
	// LastEdge is when the input last fired.
	LastEdge sim.Time
}

// IRQ returns the input's interrupt line.
func (e *ExternalInput) IRQ() *kernel.IRQLine { return e.irq }

// Signal delivers one external edge.
func (e *ExternalInput) Signal() {
	e.Edges++
	e.LastEdge = e.k.Now()
	e.k.Raise(e.irq)
}

// SinceEdge reads the input's timestamp register: time since the last
// edge (mapped, essentially free — like the timer's count register).
func (e *ExternalInput) SinceEdge(now sim.Time) sim.Duration {
	if e.Edges == 0 {
		return 0
	}
	return now.Sub(e.LastEdge)
}

// WaitCall builds a "block until the next edge" ioctl on this input —
// same multithreaded-driver path as the timer.
func (e *ExternalInput) WaitCall() *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name:        "ioctl(rcim, WAIT_EDGE " + e.Name + ")",
		TakesBKL:    true,
		DriverNoBKL: true,
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: 600 * sim.Nanosecond},
			{Kind: kernel.SegBlock, Wait: e.wq},
			{Kind: kernel.SegWork, D: rcimWaitReturn},
		},
	}
}

// NewRCIM creates the card and registers its edge-triggered interrupt.
func NewRCIM(k *kernel.Kernel, period sim.Duration) *RCIM {
	if period <= 0 {
		panic("dev: RCIM period must be positive")
	}
	r := &RCIM{k: k, wq: k.NewWaitQueue("rcim"), period: period}
	r.id = k.RegisterComponent(r)
	handler := func(rng *sim.RNG) sim.Duration {
		// The handler reads the card's status and acknowledges the
		// interrupt: several PCI transactions at ~1-2µs each. PCI bus
		// latency is fixed hardware cost (it does not scale with CPU
		// frequency) and varies with competing DMA traffic, which is
		// what spreads the paper's 11-27µs band under heavy disk and
		// network load.
		return rng.Jitter(5500*sim.Nanosecond, 0.15) +
			rng.Pareto(600*sim.Nanosecond, 1.3, 10*sim.Microsecond)
	}
	r.irq = k.RegisterIRQ("rcim", 0, handler, func(c *kernel.CPU) {
		k.WakeAll(r.wq, c)
	})
	// Edge-triggered fast handler: runs with interrupts disabled.
	r.irq.Fast = true
	return r
}

// IRQ returns the card's interrupt line.
func (r *RCIM) IRQ() *kernel.IRQLine { return r.irq }

// NewExternalInput attaches an external edge-triggered signal to the
// card, creating a dedicated interrupt line for it.
func (r *RCIM) NewExternalInput(name string) *ExternalInput {
	e := &ExternalInput{
		Name: name,
		k:    r.k,
		wq:   r.k.NewWaitQueue("rcim-ext-" + name),
	}
	r.exts = append(r.exts, e)
	handler := func(rng *sim.RNG) sim.Duration {
		return rng.Jitter(4*sim.Microsecond, 0.2) +
			rng.Pareto(500*sim.Nanosecond, 1.3, 8*sim.Microsecond)
	}
	e.irq = r.k.RegisterIRQ("rcim-"+name, 0, handler, func(c *kernel.CPU) {
		r.k.WakeAll(e.wq, c)
	})
	e.irq.Fast = true
	return e
}

// Period returns the programmed periodic cycle.
func (r *RCIM) Period() sim.Duration { return r.period }

// LastFire returns when the count register last reached zero.
func (r *RCIM) LastFire() sim.Time { return r.lastFire }

// Fires returns the number of periodic expirations.
func (r *RCIM) Fires() uint64 { return r.fires }

// CountElapsed returns the time since the current periodic cycle began,
// i.e. the initial count minus the current count register value. The test
// program computes its interrupt response latency exactly this way (§6.3),
// and because the register is mapped, the read is essentially free.
func (r *RCIM) CountElapsed(now sim.Time) sim.Duration {
	if r.fires == 0 {
		return 0
	}
	return now.Sub(r.lastFire)
}

// Start begins the periodic timer.
func (r *RCIM) Start() {
	if r.running {
		return
	}
	r.running = true
	r.k.Eng.AfterTagged(r.period, evRCIMFire.Tag(r.id, 0, 0), r.fire)
}

// fire is the count-register-zero event body: raise the edge-triggered
// interrupt and reload the count (re-arm).
func (r *RCIM) fire() {
	if !r.running {
		return
	}
	r.lastFire = r.k.Now()
	r.fires++
	r.k.Raise(r.irq)
	r.k.Eng.AfterTagged(r.period, evRCIMFire.Tag(r.id, 0, 0), r.fire)
}

// Stop halts the periodic timer.
func (r *RCIM) Stop() { r.running = false }

// WaitCall builds one "block until the next RCIM interrupt" ioctl. The
// 2.4 generic ioctl path takes the BKL before entering the driver; with
// RedHawk's per-driver flag (Config.BKLIoctlFlag) and this driver being
// multithreaded (DriverNoBKL), the BKL is skipped (§6.3). The return path
// is direct — no generic fs layers, no contended locks.
func (r *RCIM) WaitCall() *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name:        "ioctl(rcim, WAIT)",
		TakesBKL:    true,
		DriverNoBKL: true,
		Segments: []kernel.Segment{
			// sys_ioctl entry + driver dispatch.
			{Kind: kernel.SegWork, D: 600 * sim.Nanosecond},
			{Kind: kernel.SegBlock, Wait: r.wq},
			// Straight back to user space; the first thing user code
			// does is read the mapped count register (one PCI read).
			{Kind: kernel.SegWork, D: rcimWaitReturn},
		},
	}
}
