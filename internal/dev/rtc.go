// Package dev provides the device models the paper's experiments need:
// the Real-Time Clock (/dev/rtc), the Concurrent RCIM PCI card, an
// Ethernet NIC, a SCSI disk and a graphics controller. Each device owns an
// interrupt line on a kernel.Kernel and exposes the syscall profiles its
// driver executes, so experiments exercise the same code paths the paper
// describes: read(2) through generic fs code for the RTC, ioctl(2) with or
// without the BKL for the RCIM.
package dev

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// RTC models the PC Real-Time Clock and its 2.4 driver. The device
// generates periodic interrupts at a programmable rate; the driver's
// read(2) blocks until the next interrupt and — crucially for §6.2 of the
// paper — returns to user space "through various layers of generic file
// system code" whose spinlocks may be contended.
type RTC struct {
	k   *kernel.Kernel
	irq *kernel.IRQLine
	wq  *kernel.WaitQueue
	// fsLock is the contended generic-fs lock on the read exit path.
	fsLock *kernel.SpinLock
	id     uint64

	period  sim.Duration
	running bool
	// lastFire is when the most recent periodic interrupt was raised.
	lastFire sim.Time
	fires    uint64
}

// NewRTC creates the device and registers its interrupt line.
// hz is the periodic rate (realfeel uses 2048).
func NewRTC(k *kernel.Kernel, hz int) *RTC {
	if hz <= 0 {
		panic("dev: RTC rate must be positive")
	}
	r := &RTC{
		k:      k,
		wq:     k.NewWaitQueue("rtc"),
		fsLock: k.NamedLock("dcache"),
		period: sim.Duration(int64(sim.Second) / int64(hz)),
	}
	r.id = k.RegisterComponent(r)
	handler := func(rng *sim.RNG) sim.Duration {
		// rtc_interrupt: read the status register, update the counter.
		return rng.Jitter(2*sim.Microsecond, 0.3)
	}
	r.irq = k.RegisterIRQ("rtc", 0, handler, func(c *kernel.CPU) {
		k.WakeAll(r.wq, c)
	})
	// The RTC handler is an SA_INTERRUPT fast handler.
	r.irq.Fast = true
	return r
}

// IRQ returns the device's interrupt line (for affinity configuration).
func (r *RTC) IRQ() *kernel.IRQLine { return r.irq }

// Period returns the interval between periodic interrupts.
func (r *RTC) Period() sim.Duration { return r.period }

// LastFire returns when the last periodic interrupt fired.
func (r *RTC) LastFire() sim.Time { return r.lastFire }

// Fires returns the number of interrupts generated.
func (r *RTC) Fires() uint64 { return r.fires }

// Start begins periodic interrupt generation.
func (r *RTC) Start() {
	if r.running {
		return
	}
	r.running = true
	r.k.Eng.AfterTagged(r.period, evRTCFire.Tag(r.id, 0, 0), r.fire)
}

// fire is the periodic interrupt event body: raise the line and re-arm.
func (r *RTC) fire() {
	if !r.running {
		return
	}
	r.lastFire = r.k.Now()
	r.fires++
	r.k.Raise(r.irq)
	r.k.Eng.AfterTagged(r.period, evRTCFire.Tag(r.id, 0, 0), r.fire)
}

// Stop halts interrupt generation (pending wakeups still happen).
func (r *RTC) Stop() { r.running = false }

// ReadCall builds one read(/dev/rtc) invocation: enter the kernel, block
// until the next interrupt, then exit through generic fs code that briefly
// holds the contended fs spinlock. This is the path the paper blames for
// the 0.565 ms worst case on a shielded CPU (§6.2).
func (r *RTC) ReadCall() *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name: "read(/dev/rtc)",
		Segments: []kernel.Segment{
			// sys_read entry, fd lookup.
			{Kind: kernel.SegWork, D: 800 * sim.Nanosecond},
			{Kind: kernel.SegBlock, Wait: r.wq},
			// Wake path back out: driver copy_to_user then the generic
			// fs return layers, which take the fs lock.
			{Kind: kernel.SegWork, D: 600 * sim.Nanosecond},
			{Kind: kernel.SegWork, D: 900 * sim.Nanosecond, Lock: r.fsLock},
		},
	}
}

// ReadCallFixed is the paper's closing "remaining multithreading issues"
// item, implemented: a /dev/rtc wait path with the same treatment the
// RCIM driver got — a fully multithreaded driver reached through an
// ioctl that skips the BKL (given the per-driver flag) and returns to
// user space without crossing the contended generic fs layers. With this
// path, the RTC reaches RCIM-class guarantees on a shielded CPU (the
// `future-rtc-api` experiment).
func (r *RTC) ReadCallFixed() *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name:        "ioctl(rtc, WAIT)",
		TakesBKL:    true,
		DriverNoBKL: true,
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: 600 * sim.Nanosecond},
			{Kind: kernel.SegBlock, Wait: r.wq},
			{Kind: kernel.SegWork, D: 500 * sim.Nanosecond},
		},
	}
}

// String describes the device.
func (r *RTC) String() string {
	return fmt.Sprintf("rtc@%dHz", int64(sim.Second)/int64(r.period))
}
