package dev

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestExternalInputDeliversEdges(t *testing.T) {
	k := newKernel()
	rcim := NewRCIM(k, sim.Millisecond)
	in := rcim.NewExternalInput("encoder")
	var seen []sim.Time
	w := &waiter{mk: in.WaitCall, limit: 10}
	k.NewTask("edge-waiter", kernel.SchedFIFO, 90, 0, w)
	k.Start()
	for i := 1; i <= 10; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(2*sim.Millisecond), func() { in.Signal() })
	}
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	seen = w.arrived
	if len(seen) != 10 {
		t.Fatalf("woke %d of 10 edges", len(seen))
	}
	if in.Edges != 10 {
		t.Fatalf("Edges = %d", in.Edges)
	}
	// Each wake lands shortly after its edge.
	for i, at := range seen {
		edge := sim.Time(i+1) * sim.Time(2*sim.Millisecond)
		lat := at.Sub(edge)
		if lat < 0 || lat > 60*sim.Microsecond {
			t.Fatalf("edge %d latency = %v", i, lat)
		}
	}
}

func TestExternalInputOnShieldedCPU(t *testing.T) {
	// The paper's whole point: an external real-world signal affined to
	// a shielded CPU gets a deterministic response even under load.
	k := newKernel()
	rcim := NewRCIM(k, sim.Millisecond)
	in := rcim.NewExternalInput("trigger")
	var worst sim.Duration
	count := 0
	phase := 0
	k.NewTask("responder", kernel.SchedFIFO, 95, kernel.MaskOf(1),
		kernel.BehaviorFunc(func(tk *kernel.Task) kernel.Action {
			phase++
			if phase%2 == 1 {
				act := kernel.Syscall(in.WaitCall())
				act.OnComplete = func(now sim.Time) {
					if lat := in.SinceEdge(now); lat > worst {
						worst = lat
					}
					count++
				}
				return act
			}
			return kernel.Compute(5 * sim.Microsecond)
		}))
	// A CPU hog keeps CPU0 saturated.
	k.NewTask("hog", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(*kernel.Task) kernel.Action {
		return kernel.Compute(sim.Second)
	}))
	k.Start()
	if err := k.SetShieldAll(kernel.MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := k.SetIRQAffinity(in.IRQ(), kernel.MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	rng := k.Eng.RNG().Fork()
	var fire func()
	fire = func() {
		in.Signal()
		k.Eng.After(rng.Uniform(500*sim.Microsecond, 3*sim.Millisecond), fire)
	}
	k.Eng.After(sim.Millisecond, fire)
	k.Eng.Run(sim.Time(sim.Second))
	if count < 300 {
		t.Fatalf("responded to %d edges, want hundreds", count)
	}
	if worst > 30*sim.Microsecond {
		t.Fatalf("worst edge response = %v, want <30µs on shielded CPU", worst)
	}
}

func TestRTCFixedAPISkipsFSLocks(t *testing.T) {
	// The future-work path: no dcache traffic from the wait loop.
	k := newKernel()
	rtc := NewRTC(k, 1024)
	w := &waiter{mk: rtc.ReadCallFixed, limit: 50}
	k.NewTask("waiter", kernel.SchedFIFO, 90, 0, w)
	rtc.Start()
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if len(w.arrived) != 50 {
		t.Fatalf("completed %d of 50", len(w.arrived))
	}
	if got := k.NamedLock("dcache").Acquisitions; got != 0 {
		t.Fatalf("fixed API still took the dcache lock %d times", got)
	}
	if k.BKL.Acquisitions != 0 {
		t.Fatal("fixed API took the BKL on RedHawk")
	}
}

func TestRCIMHandlerSpread(t *testing.T) {
	// The PCI-contention model must give Figure 7's band: a tight
	// cluster with occasional excursions, all bounded.
	k := newKernel()
	rcim := NewRCIM(k, 500*sim.Microsecond)
	var lats []sim.Duration
	phase := 0
	k.NewTask("meas", kernel.SchedFIFO, 90, kernel.MaskOf(1),
		kernel.BehaviorFunc(func(tk *kernel.Task) kernel.Action {
			phase++
			if phase%2 == 1 {
				act := kernel.Syscall(rcim.WaitCall())
				act.OnComplete = func(now sim.Time) {
					lats = append(lats, rcim.CountElapsed(now))
				}
				return act
			}
			return kernel.Compute(sim.Microsecond)
		}))
	rcim.Start()
	k.Start()
	if err := k.SetShieldAll(kernel.MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := k.SetIRQAffinity(rcim.IRQ(), kernel.MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	k.Eng.Run(sim.Time(5 * sim.Second))
	if len(lats) < 9000 {
		t.Fatalf("only %d samples", len(lats))
	}
	var min, max sim.Duration = 1 << 62, 0
	for _, l := range lats {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min < 5*sim.Microsecond || min > 15*sim.Microsecond {
		t.Fatalf("min = %v, want ~8-12µs", min)
	}
	if max >= 30*sim.Microsecond {
		t.Fatalf("max = %v, must stay under the paper's 30µs bound", max)
	}
	if max < min+3*sim.Microsecond {
		t.Fatalf("band too tight (min %v, max %v): PCI contention not modelled", min, max)
	}
}
