package dev

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// GPU models a GeForce2-class graphics controller for the X11perf load in
// the paper's final experiment (§6.3). The X server stuffs the command
// FIFO; the card raises an interrupt when the FIFO drains or at vblank,
// and the handler runs a tasklet to kick the next batch.
type GPU struct {
	k    *kernel.Kernel
	irq  *kernel.IRQLine
	name string
	id   uint64

	// Statistics.
	Batches uint64
}

// NewGPU creates the controller and registers its interrupt line.
func NewGPU(k *kernel.Kernel, name string) *GPU {
	g := &GPU{k: k, name: name}
	g.id = k.RegisterComponent(g)
	handler := func(rng *sim.RNG) sim.Duration {
		return rng.Jitter(4*sim.Microsecond, 0.4)
	}
	g.irq = k.RegisterIRQ(name, 0, handler, func(c *kernel.CPU) {
		// FIFO housekeeping runs as a tasklet.
		c.RaiseSoftirq(kernel.SoftirqTasklet, 15*sim.Microsecond)
	})
	return g
}

// IRQ returns the controller's interrupt line.
func (g *GPU) IRQ() *kernel.IRQLine { return g.irq }

// SubmitBatch models the X server pushing one batch of rendering
// commands: the FIFO-drain interrupt arrives after the card has chewed
// through it.
func (g *GPU) SubmitBatch(renderTime sim.Duration) {
	g.Batches++
	g.k.Eng.AfterTagged(renderTime, evGPUIRQ.Tag(g.id, 0, 0), g.raiseIRQ)
}

// raiseIRQ is the FIFO-drain interrupt event body.
func (g *GPU) raiseIRQ() { g.k.Raise(g.irq) }
