package dev

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// NIC models a 3c905C-class Ethernet controller. Traffic generators feed
// it frames; each delivery batch raises a receive interrupt whose handler
// queues NET_RX softirq work proportional to the bytes received — the
// protocol processing that made networking load the dominant jitter source
// in the paper's determinism tests. Transmits symmetrically raise NET_TX
// work and a completion interrupt.
type NIC struct {
	k    *kernel.Kernel
	irq  *kernel.IRQLine
	name string
	id   uint64

	perKB sim.Duration

	// pending bytes to be accounted by the next interrupt's handler.
	pendingRxKB float64
	pendingTxKB float64

	// Statistics.
	RxBytes, TxBytes uint64
	RxIRQs, TxIRQs   uint64
}

// NewNIC creates the controller and registers its interrupt line.
func NewNIC(k *kernel.Kernel, name string) *NIC {
	n := &NIC{k: k, name: name, perKB: k.Cfg.Timing.SoftirqNetPerKB}
	n.id = k.RegisterComponent(n)
	handler := func(rng *sim.RNG) sim.Duration {
		// Ring buffer service: acknowledge, refill descriptors.
		return rng.Jitter(5*sim.Microsecond, 0.4)
	}
	n.irq = k.RegisterIRQ(name, 0, handler, func(c *kernel.CPU) {
		if n.pendingRxKB > 0 {
			c.RaiseSoftirq(kernel.SoftirqNetRx, n.perKB.Scale(n.pendingRxKB))
			n.pendingRxKB = 0
		}
		if n.pendingTxKB > 0 {
			c.RaiseSoftirq(kernel.SoftirqNetTx, n.perKB.Scale(n.pendingTxKB*0.6))
			n.pendingTxKB = 0
		}
	})
	return n
}

// IRQ returns the controller's interrupt line.
func (n *NIC) IRQ() *kernel.IRQLine { return n.irq }

// Receive delivers bytes arriving from the wire: the hardware batches
// them into one interrupt whose bottom half does the protocol work.
func (n *NIC) Receive(bytes int) {
	if bytes <= 0 {
		return
	}
	n.RxBytes += uint64(bytes)
	n.RxIRQs++
	n.pendingRxKB += float64(bytes) / 1024
	n.k.Raise(n.irq)
}

// Transmit queues bytes for sending; completion raises an interrupt with
// NET_TX bottom-half work.
func (n *NIC) Transmit(bytes int) {
	if bytes <= 0 {
		return
	}
	n.TxBytes += uint64(bytes)
	n.TxIRQs++
	n.pendingTxKB += float64(bytes) / 1024
	n.k.Raise(n.irq)
}
