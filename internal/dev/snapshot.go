package dev

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Serialisable event identities for the events the devices schedule.
// The kernel's restore path reconstructs each pending event's callback
// through the rebuilders registered below, addressing the owning device
// by its component id (A0) — which agrees across processes because
// construction order does.
var (
	// dev.disk-complete: A0 = disk component id, A1 = wake queue id (0
	// for fire-and-forget writeback).
	evDiskComplete = sim.RegisterEventKind("dev.disk-complete")
	// dev.gpu-irq: A0 = GPU component id.
	evGPUIRQ = sim.RegisterEventKind("dev.gpu-irq")
	// dev.rtc-fire: A0 = RTC component id.
	evRTCFire = sim.RegisterEventKind("dev.rtc-fire")
	// dev.rcim-fire: A0 = RCIM component id.
	evRCIMFire = sim.RegisterEventKind("dev.rcim-fire")
)

// component fetches a registered component and checks its type, so a
// mismatched image fails with a description instead of a panic.
func component[T kernel.SnapComponent](rc *kernel.RestoreContext, id uint64, kind string) (T, error) {
	comp := rc.K.Component(id)
	c, ok := comp.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("dev: event %s names component %d, which is a %T", kind, id, comp)
	}
	return c, nil
}

func init() {
	kernel.RegisterEventRebuild("dev.disk-complete", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		d, err := component[*Disk](rc, a0, "dev.disk-complete")
		if err != nil {
			return nil, err
		}
		if a1 != 0 && rc.K.WaitQueueByID(a1) == nil {
			return nil, fmt.Errorf("dev: disk completion names unknown wait queue %d", a1)
		}
		return func() { d.complete(a1) }, nil
	})
	kernel.RegisterEventRebuild("dev.gpu-irq", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		g, err := component[*GPU](rc, a0, "dev.gpu-irq")
		if err != nil {
			return nil, err
		}
		return g.raiseIRQ, nil
	})
	kernel.RegisterEventRebuild("dev.rtc-fire", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		r, err := component[*RTC](rc, a0, "dev.rtc-fire")
		if err != nil {
			return nil, err
		}
		return r.fire, nil
	})
	kernel.RegisterEventRebuild("dev.rcim-fire", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		r, err := component[*RCIM](rc, a0, "dev.rcim-fire")
		if err != nil {
			return nil, err
		}
		return r.fire, nil
	})
}

// --- Disk ---

// SnapName implements kernel.SnapComponent.
func (d *Disk) SnapName() string { return "dev.disk/" + d.name }

// Snapshot implements kernel.SnapComponent.
func (d *Disk) Snapshot(w *snapshot.Writer) error {
	for _, wq := range d.completions {
		if wq.ID() == 0 {
			return fmt.Errorf("dev: disk %s has a pending completion for unregistered wait queue %q", d.name, wq.Name)
		}
	}
	w.Begin(d.SnapName())
	w.I64(1, int64(d.busyUntil))
	w.U64(2, d.rng.State())
	w.U64(3, d.Requests)
	w.U64(4, d.BytesDone)
	w.U64(5, uint64(len(d.completions)))
	for _, wq := range d.completions {
		w.U64(6, wq.ID())
	}
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (d *Disk) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(d.SnapName())
	d.busyUntil = sim.Time(r.I64(1))
	d.rng.SetState(r.U64(2))
	d.Requests = r.U64(3)
	d.BytesDone = r.U64(4)
	n := int(r.U64(5))
	d.completions = nil
	for i := 0; i < n; i++ {
		id := r.U64(6)
		wq := rc.K.WaitQueueByID(id)
		if wq == nil {
			return fmt.Errorf("dev: disk %s restore names unknown wait queue %d", d.name, id)
		}
		d.completions = append(d.completions, wq)
	}
	r.EndSection()
	return r.Err()
}

// --- NIC ---

// SnapName implements kernel.SnapComponent.
func (n *NIC) SnapName() string { return "dev.nic/" + n.name }

// Snapshot implements kernel.SnapComponent.
func (n *NIC) Snapshot(w *snapshot.Writer) error {
	w.Begin(n.SnapName())
	w.F64(1, n.pendingRxKB)
	w.F64(2, n.pendingTxKB)
	w.U64(3, n.RxBytes)
	w.U64(4, n.TxBytes)
	w.U64(5, n.RxIRQs)
	w.U64(6, n.TxIRQs)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (n *NIC) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(n.SnapName())
	n.pendingRxKB = r.F64(1)
	n.pendingTxKB = r.F64(2)
	n.RxBytes = r.U64(3)
	n.TxBytes = r.U64(4)
	n.RxIRQs = r.U64(5)
	n.TxIRQs = r.U64(6)
	r.EndSection()
	return r.Err()
}

// --- GPU ---

// SnapName implements kernel.SnapComponent.
func (g *GPU) SnapName() string { return "dev.gpu/" + g.name }

// Snapshot implements kernel.SnapComponent.
func (g *GPU) Snapshot(w *snapshot.Writer) error {
	w.Begin(g.SnapName())
	w.U64(1, g.Batches)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (g *GPU) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(g.SnapName())
	g.Batches = r.U64(1)
	r.EndSection()
	return r.Err()
}

// --- RTC ---

// SnapName implements kernel.SnapComponent.
func (r *RTC) SnapName() string { return "dev.rtc" }

// Snapshot implements kernel.SnapComponent.
func (r *RTC) Snapshot(w *snapshot.Writer) error {
	w.Begin(r.SnapName())
	w.Bool(1, r.running)
	w.I64(2, int64(r.lastFire))
	w.U64(3, r.fires)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (r *RTC) Restore(rd *snapshot.Reader, rc *kernel.RestoreContext) error {
	rd.Section(r.SnapName())
	r.running = rd.Bool(1)
	r.lastFire = sim.Time(rd.I64(2))
	r.fires = rd.U64(3)
	rd.EndSection()
	return rd.Err()
}

// --- RCIM ---

// SnapName implements kernel.SnapComponent.
func (r *RCIM) SnapName() string { return "dev.rcim" }

// Snapshot implements kernel.SnapComponent.
func (r *RCIM) Snapshot(w *snapshot.Writer) error {
	w.Begin(r.SnapName())
	w.Bool(1, r.running)
	w.I64(2, int64(r.lastFire))
	w.U64(3, r.fires)
	w.U64(4, uint64(len(r.exts)))
	for _, e := range r.exts {
		w.U64(5, e.Edges)
		w.I64(6, int64(e.LastEdge))
	}
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (r *RCIM) Restore(rd *snapshot.Reader, rc *kernel.RestoreContext) error {
	rd.Section(r.SnapName())
	r.running = rd.Bool(1)
	r.lastFire = sim.Time(rd.I64(2))
	r.fires = rd.U64(3)
	if n := int(rd.U64(4)); n != len(r.exts) {
		return fmt.Errorf("dev: rcim image has %d external inputs, machine has %d", n, len(r.exts))
	}
	for _, e := range r.exts {
		e.Edges = rd.U64(5)
		e.LastEdge = sim.Time(rd.I64(6))
	}
	rd.EndSection()
	return rd.Err()
}

func init() {
	snapshot.RegisterState(Disk{}, snapshot.Manifest{
		"k":           "skip: construction back-pointer",
		"irq":         "skip: line state lives in kernel.machine",
		"rng":         "codec",
		"name":        "skip: construction identity (section name)",
		"id":          "skip: registration-order identity",
		"seekMin":     "skip: construction-fixed device parameter",
		"seekMax":     "skip: construction-fixed device parameter",
		"bytesPerSec": "skip: construction-fixed device parameter",
		"busyUntil":   "codec",
		"completions": "codec", // by registered wait queue id
		"Requests":    "codec",
		"BytesDone":   "codec",
	})
	snapshot.RegisterState(NIC{}, snapshot.Manifest{
		"k":           "skip: construction back-pointer",
		"irq":         "skip: line state lives in kernel.machine",
		"name":        "skip: construction identity (section name)",
		"id":          "skip: registration-order identity",
		"perKB":       "skip: construction-fixed (from config timing)",
		"pendingRxKB": "codec",
		"pendingTxKB": "codec",
		"RxBytes":     "codec",
		"TxBytes":     "codec",
		"RxIRQs":      "codec",
		"TxIRQs":      "codec",
	})
	snapshot.RegisterState(GPU{}, snapshot.Manifest{
		"k":       "skip: construction back-pointer",
		"irq":     "skip: line state lives in kernel.machine",
		"name":    "skip: construction identity (section name)",
		"id":      "skip: registration-order identity",
		"Batches": "codec",
	})
	snapshot.RegisterState(RTC{}, snapshot.Manifest{
		"k":        "skip: construction back-pointer",
		"irq":      "skip: line state lives in kernel.machine",
		"wq":       "skip: registered wait queue, serialised in kernel.waitqs",
		"fsLock":   "skip: named lock, serialised in kernel.locks",
		"id":       "skip: registration-order identity",
		"period":   "skip: construction-fixed device parameter",
		"running":  "codec",
		"lastFire": "codec",
		"fires":    "codec",
	})
	snapshot.RegisterState(RCIM{}, snapshot.Manifest{
		"k":        "skip: construction back-pointer",
		"irq":      "skip: line state lives in kernel.machine",
		"wq":       "skip: registered wait queue, serialised in kernel.waitqs",
		"id":       "skip: registration-order identity",
		"exts":     "codec", // count validated; per-input counters inline
		"period":   "skip: construction-fixed device parameter",
		"running":  "codec",
		"lastFire": "codec",
		"fires":    "codec",
	})
	snapshot.RegisterState(ExternalInput{}, snapshot.Manifest{
		"Name":     "skip: construction identity",
		"irq":      "skip: line state lives in kernel.machine",
		"wq":       "skip: registered wait queue, serialised in kernel.waitqs",
		"k":        "skip: construction back-pointer",
		"Edges":    "codec",
		"LastEdge": "codec",
	})
}
