package dev

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Disk models a SCSI drive: requests queue at the device, complete after
// a seek+transfer delay, and each completion raises an interrupt whose
// handler runs the block-device bottom half and optionally wakes the
// submitting task (synchronous I/O). The disknoise script and the FS
// stress test drive this device.
type Disk struct {
	k    *kernel.Kernel
	irq  *kernel.IRQLine
	rng  *sim.RNG
	name string
	id   uint64

	// seekMin/seekMax bound the per-request positioning latency.
	seekMin, seekMax sim.Duration
	// bytesPerSec is the media transfer rate.
	bytesPerSec float64

	// busyUntil serializes the device: a request starts service when the
	// previous one finishes.
	busyUntil sim.Time

	// completion wakeups pending for the next interrupt.
	completions []*kernel.WaitQueue

	// Statistics.
	Requests  uint64
	BytesDone uint64
}

// NewDisk creates the drive and registers its interrupt line.
func NewDisk(k *kernel.Kernel, name string) *Disk {
	d := &Disk{
		k:           k,
		rng:         k.Eng.RNG().Fork(),
		name:        name,
		seekMin:     2 * sim.Millisecond,
		seekMax:     9 * sim.Millisecond,
		bytesPerSec: 40e6, // 40 MB/s, a 2002-era SCSI drive
	}
	d.id = k.RegisterComponent(d)
	handler := func(rng *sim.RNG) sim.Duration {
		return rng.Jitter(7*sim.Microsecond, 0.4)
	}
	d.irq = k.RegisterIRQ(name, 0, handler, func(c *kernel.CPU) {
		c.RaiseSoftirq(kernel.SoftirqBlock, k.Cfg.Timing.SoftirqBlockPerOp)
		for _, wq := range d.completions {
			k.WakeAll(wq, c)
		}
		d.completions = nil
	})
	return d
}

// IRQ returns the drive's interrupt line.
func (d *Disk) IRQ() *kernel.IRQLine { return d.irq }

// Submit queues a request of the given size. If wake is non-nil, every
// task blocked on it is woken by the completion interrupt (synchronous
// I/O); pass nil for writeback-style fire-and-forget.
func (d *Disk) Submit(bytes int, wake *kernel.WaitQueue) {
	if bytes <= 0 {
		bytes = 512
	}
	d.Requests++
	d.BytesDone += uint64(bytes)
	now := d.k.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	service := d.rng.Uniform(d.seekMin, d.seekMax) +
		sim.Duration(float64(bytes)/d.bytesPerSec*1e9)
	done := start.Add(service)
	d.busyUntil = done
	if wake == nil || wake.ID() != 0 {
		var wqID uint64
		if wake != nil {
			wqID = wake.ID()
		}
		d.k.Eng.ScheduleTagged(done, evDiskComplete.Tag(d.id, wqID, 0),
			func() { d.complete(wqID) })
		return
	}
	// Unregistered wake queue: the completion must capture the pointer,
	// so a snapshot with this request in flight fails loudly (untagged
	// event) instead of dropping the wakeup.
	d.k.Eng.Schedule(done, func() {
		d.completions = append(d.completions, wake)
		d.k.Raise(d.irq)
	})
}

// complete is the tagged completion body: queue the wakeup for the
// interrupt handler and raise the line.
func (d *Disk) complete(wqID uint64) {
	if wqID != 0 {
		d.completions = append(d.completions, d.k.WaitQueueByID(wqID))
	}
	d.k.Raise(d.irq)
}

// QueueDepthTime reports how far in the future the device will drain.
func (d *Disk) QueueDepthTime() sim.Time { return d.busyUntil }
