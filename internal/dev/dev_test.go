package dev

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
)

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.RedHawk14(2, 1.0), 42)
}

// waiter drives a loop of wait-syscalls against a device and records each
// user-space arrival time.
type waiter struct {
	mk      func() *kernel.SyscallCall
	arrived []sim.Time
	limit   int
}

func (w *waiter) Next(t *kernel.Task) kernel.Action {
	if w.limit > 0 && len(w.arrived) >= w.limit {
		return kernel.Exit()
	}
	act := kernel.Syscall(w.mk())
	act.OnComplete = func(now sim.Time) { w.arrived = append(w.arrived, now) }
	return act
}

func TestRTCPeriodicFires(t *testing.T) {
	k := newKernel()
	rtc := NewRTC(k, 1024)
	rtc.Start()
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	// 1024 Hz for 1s.
	if rtc.Fires() < 1020 || rtc.Fires() > 1025 {
		t.Fatalf("fires = %d, want ~1024", rtc.Fires())
	}
	if rtc.Period() != sim.Duration(int64(sim.Second)/1024) {
		t.Fatalf("period = %v", rtc.Period())
	}
	rtc.Stop()
	before := rtc.Fires()
	k.Eng.Run(k.Now() + sim.Time(100*sim.Millisecond))
	if rtc.Fires() != before {
		t.Fatal("RTC fired after Stop")
	}
}

func TestRTCReadWakesOnInterrupt(t *testing.T) {
	k := newKernel()
	rtc := NewRTC(k, 2048)
	w := &waiter{mk: rtc.ReadCall, limit: 100}
	k.NewTask("realfeel", kernel.SchedFIFO, 90, 0, w)
	rtc.Start()
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if len(w.arrived) != 100 {
		t.Fatalf("reads completed = %d, want 100", len(w.arrived))
	}
	// Consecutive arrivals must be ~one period apart on a quiet machine.
	period := rtc.Period()
	for i := 1; i < len(w.arrived); i++ {
		gap := w.arrived[i].Sub(w.arrived[i-1])
		if gap < period-50*sim.Microsecond || gap > period+50*sim.Microsecond {
			t.Fatalf("gap %d = %v, want ~%v", i, gap, period)
		}
	}
}

func TestRCIMCountRegister(t *testing.T) {
	k := newKernel()
	rcim := NewRCIM(k, 500*sim.Microsecond)
	rcim.Start()
	k.Start()
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if rcim.Fires() < 19 || rcim.Fires() > 21 {
		t.Fatalf("fires = %d, want ~20", rcim.Fires())
	}
	// The count register measures time since the last expiry.
	now := k.Now()
	if got := rcim.CountElapsed(now); got != now.Sub(rcim.LastFire()) {
		t.Fatalf("CountElapsed = %v", got)
	}
}

func TestRCIMWaitLatencyTiny(t *testing.T) {
	// On an idle RedHawk CPU, RCIM wait latency must be in the tens of
	// microseconds — the paper's Figure 7 regime.
	k := newKernel()
	rcim := NewRCIM(k, sim.Millisecond)
	var lats []sim.Duration
	w := &waiter{mk: rcim.WaitCall, limit: 50}
	k.NewTask("rcimtest", kernel.SchedFIFO, 90, kernel.MaskOf(1), w)
	rcim.Start()
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	for _, at := range w.arrived {
		// Latency via the count register, as the real test does.
		_ = at
	}
	// Recompute: each arrival happened CountElapsed after the fire; use
	// the arrival gap instead to bound the response.
	if len(w.arrived) != 50 {
		t.Fatalf("waits completed = %d, want 50", len(w.arrived))
	}
	for i := 1; i < len(w.arrived); i++ {
		gap := w.arrived[i].Sub(w.arrived[i-1])
		if gap < sim.Millisecond-40*sim.Microsecond || gap > sim.Millisecond+40*sim.Microsecond {
			t.Fatalf("gap %d = %v, want ~1ms ±40µs", i, gap)
		}
	}
	_ = lats
	if k.BKL.Acquisitions != 0 {
		t.Fatalf("RCIM ioctl took the BKL %d times on RedHawk", k.BKL.Acquisitions)
	}
}

func TestRCIMTakesBKLOnStockKernel(t *testing.T) {
	cfg := kernel.StandardLinux24(1, 1.0, false)
	k := kernel.New(cfg, 42)
	rcim := NewRCIM(k, sim.Millisecond)
	w := &waiter{mk: rcim.WaitCall, limit: 5}
	k.NewTask("rcimtest", kernel.SchedFIFO, 90, 0, w)
	rcim.Start()
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if k.BKL.Acquisitions == 0 {
		t.Fatal("stock kernel ioctl path must take the BKL")
	}
}

func TestNICReceiveRaisesSoftirqWork(t *testing.T) {
	k := newKernel()
	nic := NewNIC(k, "eth0")
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { nic.Receive(64 * 1024) })
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if nic.RxIRQs != 1 || nic.RxBytes != 64*1024 {
		t.Fatalf("rx stats: irqs=%d bytes=%d", nic.RxIRQs, nic.RxBytes)
	}
	// 64KB × 9µs/KB ≈ 576µs of NET_RX work must have run somewhere.
	total := k.CPU(0).SoftirqTime + k.CPU(1).SoftirqTime
	if total < 400*sim.Microsecond {
		t.Fatalf("softirq time = %v, want ≥ ~0.5ms", total)
	}
}

func TestNICTransmit(t *testing.T) {
	k := newKernel()
	nic := NewNIC(k, "eth0")
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { nic.Transmit(32 * 1024) })
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if nic.TxIRQs != 1 || nic.TxBytes != 32*1024 {
		t.Fatalf("tx stats: irqs=%d bytes=%d", nic.TxIRQs, nic.TxBytes)
	}
	if nic.Receive(0); nic.RxIRQs != 0 {
		t.Fatal("zero-byte receive should be ignored")
	}
}

func TestDiskCompletionWakesSubmitter(t *testing.T) {
	k := newKernel()
	disk := NewDisk(k, "sda")
	wq := kernel.NewWaitQueue("io-done")
	var done sim.Time
	call := &kernel.SyscallCall{
		Name: "read(file)",
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: 2 * sim.Microsecond,
				OnDone: func() { disk.Submit(4096, wq) }},
			{Kind: kernel.SegBlock, Wait: wq},
			{Kind: kernel.SegWork, D: sim.Microsecond},
		},
	}
	act := kernel.Syscall(call)
	act.OnComplete = func(now sim.Time) { done = now }
	k.NewTask("reader", kernel.SchedOther, 0, 0, &onceB{[]kernel.Action{act}, 0})
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if done == 0 {
		t.Fatal("synchronous read never completed")
	}
	// Seek is 2-9ms.
	if done < sim.Time(2*sim.Millisecond) || done > sim.Time(12*sim.Millisecond) {
		t.Fatalf("read completed at %v, want within seek+transfer bounds", done)
	}
	if disk.Requests != 1 {
		t.Fatalf("requests = %d", disk.Requests)
	}
}

func TestDiskSerializesRequests(t *testing.T) {
	k := newKernel()
	disk := NewDisk(k, "sda")
	k.Start()
	k.Eng.Schedule(1, func() {
		for i := 0; i < 10; i++ {
			disk.Submit(1<<20, nil) // 1MB each: ≥25ms transfer+seek
		}
	})
	k.Eng.Run(sim.Time(10))
	// All ten must be queued behind each other: drain time ≥ 10 × 27ms.
	if got := disk.QueueDepthTime(); got < sim.Time(200*sim.Millisecond) {
		t.Fatalf("queue drain at %v, requests did not serialize", got)
	}
}

func TestGPUBatchInterrupt(t *testing.T) {
	k := newKernel()
	gpu := NewGPU(k, "nv")
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { gpu.SubmitBatch(5 * sim.Millisecond) })
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if gpu.Batches != 1 {
		t.Fatalf("batches = %d", gpu.Batches)
	}
	if gpu.IRQ().Handled != 1 {
		t.Fatalf("gpu irq handled = %d, want 1", gpu.IRQ().Handled)
	}
}

// onceB is a minimal one-shot behavior for tests.
type onceB struct {
	actions []kernel.Action
	i       int
}

func (b *onceB) Next(*kernel.Task) kernel.Action {
	if b.i >= len(b.actions) {
		return kernel.Exit()
	}
	a := b.actions[b.i]
	b.i++
	return a
}
