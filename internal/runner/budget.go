package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// BudgetError is the typed refusal a budgeted fan-out (or any caller
// using CheckBudget, like the simd admission layer) returns when a
// request asks for more work than its budget allows. It is always
// returned before any work starts: an oversized request fails fast with
// a machine-readable error instead of hanging a worker pool or running
// partially.
type BudgetError struct {
	// Requested and Budget are in Unit ("replications" for the map
	// variants; callers with other cost models name their own unit).
	Requested int64
	Budget    int64
	Unit      string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("runner: budget exceeded: requested %d %s, budget %d", e.Requested, e.Unit, e.Budget)
}

// CheckBudget returns a *BudgetError when requested exceeds budget, nil
// otherwise. A budget <= 0 means unlimited.
func CheckBudget(requested, budget int64, unit string) error {
	if budget > 0 && requested > budget {
		return &BudgetError{Requested: requested, Budget: budget, Unit: unit}
	}
	return nil
}

// MapSeededPooledCtx is MapSeededPooled with cooperative cancellation:
// once ctx is done, workers stop picking up new replications and the
// call returns (nil, ctx.Err()). Replications already in flight finish
// first — a simulation run is not interruptible mid-run — so the call
// returns promptly after at most one replication per worker, never
// hangs, and never returns a partial result slice: results are all or
// nothing, because a partial merge would not be deterministic.
//
// When ctx is never cancelled the output is byte-for-byte identical to
// MapSeededPooled(workers, base, n, fn) — same seeds, same index-ordered
// placement, same per-worker pool ownership.
func MapSeededPooledCtx[T any](ctx context.Context, workers int, base uint64, n int, fn func(i int, seed uint64, pool *sim.EventPool) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		pool := sim.NewEventPool()
		for i := range out {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = fn(i, sim.DeriveSeed(base, uint64(i)), pool)
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			pool := sim.NewEventPool()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i, sim.DeriveSeed(base, uint64(i)), pool)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MapSeededPooledBudget is MapSeededPooledCtx behind a replication
// budget: when n exceeds budget the typed *BudgetError comes back
// immediately and fn never runs. This is the per-request admission
// contract the simd service builds on — an oversized request is refused
// up front, not discovered by a stuck worker. budget <= 0 means
// unlimited.
func MapSeededPooledBudget[T any](ctx context.Context, workers int, base uint64, n, budget int, fn func(i int, seed uint64, pool *sim.EventPool) T) ([]T, error) {
	if err := CheckBudget(int64(n), int64(budget), "replications"); err != nil {
		return nil, err
	}
	return MapSeededPooledCtx(ctx, workers, base, n, fn)
}
