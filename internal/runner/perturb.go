package runner

import (
	"fmt"

	"repro/internal/sim"
)

// PerturbRun is the outcome of one perturbed re-run of a scenario.
type PerturbRun struct {
	// Salt is the tie-break salt the scenario ran under (never 0).
	Salt uint64
	// Fingerprint is the scenario's result digest under that salt.
	Fingerprint string
}

// PerturbReport is the verdict of a schedule-perturbation sweep: one
// baseline (FIFO) run plus n perturbed re-runs of the same scenario.
type PerturbReport struct {
	// Baseline is the fingerprint at salt 0, i.e. plain FIFO tie-breaks.
	Baseline string
	// Runs holds the perturbed re-runs in salt-derivation order.
	Runs []PerturbRun
}

// Diverged returns the perturbed runs whose fingerprint differs from
// the baseline. A non-empty result is a tie-break race: the scenario's
// output depends on the dispatch order of simultaneous events, which
// the determinism contract forbids (same config + seed must give
// bit-identical results).
func (r PerturbReport) Diverged() []PerturbRun {
	var out []PerturbRun
	for _, run := range r.Runs {
		if run.Fingerprint != r.Baseline {
			out = append(out, run)
		}
	}
	return out
}

// OK reports whether every perturbed run matched the baseline.
func (r PerturbReport) OK() bool { return len(r.Diverged()) == 0 }

// String renders a one-line verdict.
func (r PerturbReport) String() string {
	if d := r.Diverged(); len(d) > 0 {
		return fmt.Sprintf("TIE-BREAK RACE: %d/%d perturbed runs diverged from baseline %s (first: salt %#x -> %s)",
			len(d), len(r.Runs), r.Baseline, d[0].Salt, d[0].Fingerprint)
	}
	return fmt.Sprintf("ok: %d/%d perturbed runs match baseline %s", len(r.Runs), len(r.Runs), r.Baseline)
}

// Perturb runs fn once with salt 0 (the FIFO baseline) and n more times
// with distinct non-zero salts derived from base, fanning the runs out
// across up to workers goroutines. fn must run the scenario with the
// given tie-break salt (kernel.Config.TiebreakSalt or
// sim.Engine.PerturbTiebreaks) and return a result fingerprint. The
// report compares every perturbed fingerprint against the baseline.
//
// Salts are derived with sim.DeriveSeed(base, 1+i); a derived salt of 0
// (which would silently mean "no perturbation") is remapped.
func Perturb(workers int, base uint64, n int, fn func(salt uint64) string) PerturbReport {
	salts := make([]uint64, n)
	for i := range salts {
		s := sim.DeriveSeed(base, uint64(1+i))
		if s == 0 {
			s = sim.DeriveSeed(base+1, uint64(1+i))
		}
		salts[i] = s
	}
	prints := Map(workers, n+1, func(i int) string {
		if i == 0 {
			return fn(0)
		}
		return fn(salts[i-1])
	})
	rep := PerturbReport{Baseline: prints[0]}
	for i, s := range salts {
		rep.Runs = append(rep.Runs, PerturbRun{Salt: s, Fingerprint: prints[1+i]})
	}
	return rep
}
