package runner

import "repro/internal/sim"

// MapSnapshot is the warm-start fan-out: n replications that all begin
// from one shared snapshot image instead of each replaying the boot
// sequence. Replication i receives the image plus a distinct non-zero
// tie-break salt derived from base, and runs on up to workers
// goroutines with results returned in index order.
//
// The intended shape of fn is: build the scenario's machine, restore
// the image warm (kernel.Kernel.RestoreImageWarm with the given salt),
// run the measurement window, return the result. This replaces the
// per-replication boot replay of MapSeeded — the placement diversity
// the boot phase used to buy by re-dispatching the whole prefix under a
// different seed is bought instead by the salt, which re-draws every
// same-instant dispatch order from the restore point on.
//
// The determinism contract is unchanged: the output depends only on
// (base, n, img, fn), never on the worker count. Each (img, salt) pair
// continues to bit-identical bytes every time (the snap-warm
// reprocheck claims pin exactly that), so the whole sweep is
// reproducible even though its replications intentionally realise
// different schedules.
//
// Salts are derived with sim.DeriveSeed(base, 1+i); a derived salt of 0
// (which would mean "cold resume, identical to every other salt-0
// replication") is remapped the same way Perturb remaps it.
func MapSnapshot[T any](workers int, base uint64, n int, img []byte, fn func(i int, salt uint64, img []byte) T) []T {
	return Map(workers, n, func(i int) T {
		salt := sim.DeriveSeed(base, uint64(1+i))
		if salt == 0 {
			salt = sim.DeriveSeed(base+1, uint64(1+i))
		}
		return fn(i, salt, img)
	})
}
