package runner

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// racyScenario is the deliberately injected tie-break race the harness
// must catch: several events scheduled (unpinned) for the same instant
// whose callbacks append to a shared log, so the result depends on the
// dispatch order of simultaneous events.
func racyScenario(salt uint64) string {
	e := sim.NewEngine(3)
	e.PerturbTiebreaks(salt)
	out := ""
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(sim.Time(sim.Millisecond), func() { out += fmt.Sprint(i) })
	}
	e.RunAll()
	return out
}

// pinnedScenario is the same collision with the arbitration declared:
// pinned events keep FIFO order under every salt, so the "race" is part
// of the model and the harness must stay quiet.
func pinnedScenario(salt uint64) string {
	e := sim.NewEngine(3)
	e.PerturbTiebreaks(salt)
	out := ""
	for i := 0; i < 8; i++ {
		i := i
		e.SchedulePinned(sim.Time(sim.Millisecond), func() { out += fmt.Sprint(i) })
	}
	e.RunAll()
	return out
}

func TestPerturbCatchesInjectedTiebreakRace(t *testing.T) {
	rep := Perturb(2, 1, 4, racyScenario)
	if rep.Baseline != "01234567" {
		t.Fatalf("baseline = %q, want FIFO order", rep.Baseline)
	}
	d := rep.Diverged()
	if len(d) == 0 {
		t.Fatal("harness missed the injected tie-break race")
	}
	if rep.OK() {
		t.Fatal("OK() = true for a diverged report")
	}
	for _, run := range d {
		if run.Salt == 0 {
			t.Fatal("a perturbed run carried salt 0")
		}
	}
}

func TestPerturbAcceptsPinnedArbitration(t *testing.T) {
	rep := Perturb(2, 1, 4, pinnedScenario)
	if !rep.OK() {
		t.Fatalf("pinned scenario flagged as racy: %s", rep)
	}
	if rep.Baseline != "01234567" {
		t.Fatalf("baseline = %q, want FIFO order", rep.Baseline)
	}
}

func TestPerturbDeterministicAcrossWorkers(t *testing.T) {
	// The report itself obeys the determinism contract: worker count
	// must not change it.
	a := Perturb(1, 42, 6, racyScenario)
	b := Perturb(8, 42, 6, racyScenario)
	if a.Baseline != b.Baseline || len(a.Runs) != len(b.Runs) {
		t.Fatalf("reports differ across worker counts: %+v vs %+v", a, b)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d differs across worker counts: %+v vs %+v", i, a.Runs[i], b.Runs[i])
		}
	}
}

func TestPerturbStringVerdicts(t *testing.T) {
	clean := Perturb(1, 1, 2, pinnedScenario)
	racy := Perturb(1, 1, 4, racyScenario)
	if s := clean.String(); s == "" || clean.OK() != true {
		t.Fatalf("clean verdict: %q", s)
	}
	if s := racy.String(); racy.OK() || len(s) == 0 {
		t.Fatalf("racy verdict: %q", s)
	}
}
