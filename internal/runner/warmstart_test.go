package runner

import (
	"fmt"
	"strings"
	"testing"
)

// TestMapSnapshotContract: results in index order, the shared image
// delivered to every replication, all salts non-zero and distinct, and
// the output identical for workers=1 and workers=8.
func TestMapSnapshotContract(t *testing.T) {
	img := []byte{0xca, 0xfe}
	run := func(workers int) []string {
		return MapSnapshot(workers, 99, 32, img, func(i int, salt uint64, got []byte) string {
			if &got[0] != &img[0] {
				t.Error("image not shared")
			}
			if salt == 0 {
				t.Errorf("replication %d got salt 0", i)
			}
			return fmt.Sprintf("%d:%x", i, salt)
		})
	}
	serial := run(1)
	pooled := run(8)
	seen := make(map[string]bool)
	for i, s := range serial {
		if s != pooled[i] {
			t.Fatalf("slot %d differs across worker counts: %s vs %s", i, s, pooled[i])
		}
		salt := s[strings.IndexByte(s, ':')+1:]
		if seen[salt] {
			t.Fatalf("duplicate salt at slot %d", i)
		}
		seen[salt] = true
	}
}
