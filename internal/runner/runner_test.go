package runner

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, w := range []int{1, 2, 4, 7, 16} {
		got := Map(w, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map of 0 items = %v, want nil", got)
	}
	if got := Map(4, -1, func(i int) int { return i }); got != nil {
		t.Errorf("Map of -1 items = %v, want nil", got)
	}
}

func TestMapRunsEveryIndexOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(5, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the runner-level equivalence
// guarantee: a seeded computation fanned out over any worker count gives
// byte-identical results.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []uint64 {
		return MapSeeded(workers, 42, 64, func(i int, seed uint64) uint64 {
			rng := sim.NewRNG(seed)
			var acc uint64
			for j := 0; j < 1000; j++ {
				acc ^= rng.Uint64()
			}
			return acc
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 7} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

func TestMapSeededDistinctStreams(t *testing.T) {
	seeds := MapSeeded(4, 1, 100, func(i int, seed uint64) uint64 { return seed })
	seen := map[uint64]int{}
	for i, s := range seeds {
		if prev, dup := seen[s]; dup {
			t.Fatalf("replications %d and %d share seed %#x", prev, i, s)
		}
		seen[s] = i
	}
	// A different base seed must give a fully disjoint set.
	other := MapSeeded(4, 2, 100, func(i int, seed uint64) uint64 { return seed })
	for i, s := range other {
		if prev, dup := seen[s]; dup {
			t.Fatalf("base 2 replication %d collides with base 1 replication %d", i, prev)
		}
	}
}

// TestDeriveSeedBeatsAdditiveOffsets pins the failure mode the additive
// scheme had: base seeds K apart reusing each other's streams.
func TestDeriveSeedBeatsAdditiveOffsets(t *testing.T) {
	const k = 1000003
	// Old scheme: base=1 replication 2 == base=1+k replication 1.
	if (1 + 2*k) != (1+k)+1*k {
		t.Fatal("arithmetic sanity")
	}
	if sim.DeriveSeed(1, 2) == sim.DeriveSeed(1+k, 1) {
		t.Fatal("DeriveSeed reproduces the additive collision")
	}
}

// TestMapSeededPooledDeterministicAcrossWorkerCounts extends the
// equivalence guarantee to the pooled variant: per-worker event pools
// (recycled nodes, bumped generations) must be invisible in results for
// any worker count.
func TestMapSeededPooledDeterministicAcrossWorkerCounts(t *testing.T) {
	churn := func(seed uint64, pool *sim.EventPool) uint64 {
		e := sim.NewEngineOpts(seed, sim.EngineOptions{Pool: pool})
		rng := sim.NewRNG(seed)
		var acc uint64
		for j := 0; j < 64; j++ {
			at := sim.Time(rng.Uint64() % 1_000_000)
			e.Schedule(at, func() { acc = acc*31 + uint64(e.Now()) })
		}
		e.RunAll()
		return acc
	}
	run := func(workers int) []uint64 {
		return MapSeededPooled(workers, 42, 48, func(i int, seed uint64, pool *sim.EventPool) uint64 {
			return churn(seed, pool)
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 7} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
	// Pooled and unpooled fan-outs must agree too.
	plain := MapSeeded(3, 42, 48, func(i int, seed uint64) uint64 {
		return churn(seed, sim.NewEventPool())
	})
	if !reflect.DeepEqual(plain, want) {
		t.Fatal("pooled fan-out diverged from private-pool fan-out")
	}
}

// TestMapSeededPooledPoolOwnership pins the ownership contract: one
// pool per worker goroutine (never more pools than workers), actually
// reused across the replications each worker runs.
func TestMapSeededPooledPoolOwnership(t *testing.T) {
	const n = 32
	for _, w := range []int{1, 4} {
		pools := MapSeededPooled(w, 7, n, func(i int, seed uint64, pool *sim.EventPool) *sim.EventPool {
			e := sim.NewEngineOpts(seed, sim.EngineOptions{Pool: pool})
			for j := 0; j < 50; j++ {
				e.After(sim.Duration(j)*sim.Microsecond, func() {})
			}
			e.RunAll()
			return pool
		})
		distinct := map[*sim.EventPool]bool{}
		for i, p := range pools {
			if p == nil {
				t.Fatalf("workers=%d: replication %d got a nil pool", w, i)
			}
			distinct[p] = true
		}
		if len(distinct) > w {
			t.Fatalf("workers=%d: %d distinct pools, want at most one per worker", w, len(distinct))
		}
		reused := false
		for p := range distinct {
			if p.Stats().Reuses > 0 {
				reused = true
			}
		}
		if !reused {
			t.Fatalf("workers=%d: no pool recycled a node across %d replications", w, n)
		}
	}
}

func TestMapSeededPooledEmpty(t *testing.T) {
	got := MapSeededPooled(4, 1, 0, func(i int, seed uint64, pool *sim.EventPool) int { return i })
	if got != nil {
		t.Errorf("MapSeededPooled of 0 items = %v, want nil", got)
	}
}

func TestMapSeededPooledPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	MapSeededPooled(4, 1, 16, func(i int, seed uint64, pool *sim.EventPool) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
	t.Fatal("MapSeededPooled returned despite panic")
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Map(4, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
	t.Fatal("Map returned despite panic")
}

func TestDoRunsAllJobs(t *testing.T) {
	var a, b, c int
	Do(3,
		func() { a = 1 },
		func() { b = 2 },
		func() { c = 3 },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("jobs incomplete: %d %d %d", a, b, c)
	}
}
