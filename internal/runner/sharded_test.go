package runner

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func shardTickCfg(shards int) sim.ShardTickConfig {
	return sim.ShardTickConfig{
		CPUs:      8,
		Shards:    shards,
		Lookahead: 20 * sim.Microsecond,
		Period:    5 * sim.Microsecond,
		IPIEvery:  3,
		Seed:      0x7e57,
	}
}

// TestRunShardedMatchesSerial is the concurrent half of the
// serial-vs-sharded oracle: the shard-tick scenario run by the worker
// pool — at every worker count, including oversubscribed — must
// reproduce the single-threaded result bit-for-bit. Under `go test
// -race` this doubles as the proof that lanes share nothing inside a
// window.
func TestRunShardedMatchesSerial(t *testing.T) {
	until := sim.Time(20 * sim.Millisecond)
	serialSet, serialCollect := sim.NewShardTick(shardTickCfg(4))
	serialSet.Run(until)
	want := serialCollect()
	if want.Ticks == 0 || want.IPIs == 0 {
		t.Fatalf("degenerate reference run: %+v", want)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		set, collect := sim.NewShardTick(shardTickCfg(4))
		if got := RunSharded(set, until, workers); got != until {
			t.Fatalf("workers=%d: RunSharded returned %v, want %v", workers, got, until)
		}
		if got := collect(); got != want {
			t.Errorf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestRunShardedShardCountInvariance: worker-pool execution at shard
// counts 1, 2, 4 all reproduce the serial shards=1 result.
func TestRunShardedShardCountInvariance(t *testing.T) {
	until := sim.Time(10 * sim.Millisecond)
	refSet, refCollect := sim.NewShardTick(shardTickCfg(1))
	refSet.Run(until)
	want := refCollect()
	for _, shards := range []int{1, 2, 4} {
		set, collect := sim.NewShardTick(shardTickCfg(shards))
		RunSharded(set, until, 0)
		if got := collect(); got != want {
			t.Errorf("shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestRunShardedPanicPropagates: a lane panic (here: a cross-lane send
// inside the lookahead, the canonical model bug) surfaces on the
// caller's goroutine with its message intact, and the worker pool winds
// down instead of deadlocking the barrier.
func TestRunShardedPanicPropagates(t *testing.T) {
	set := sim.NewShardSet(2, 10*sim.Microsecond, 1, sim.EngineOptions{})
	l0 := set.Lane(0)
	l0.Eng.Schedule(sim.Time(sim.Microsecond), func() {
		l0.Send(1, l0.Eng.Now(), 0, func() {})
	})
	set.Lane(1).Eng.Schedule(sim.Time(sim.Microsecond), func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lane panic did not propagate")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	RunSharded(set, sim.Time(sim.Millisecond), 2)
}

// TestShardWorkersComposition: the budget split between replication and
// shard parallelism never oversubscribes and never starves.
func TestShardWorkersComposition(t *testing.T) {
	cases := []struct {
		workers, shards, want int
	}{
		{8, 4, 2},
		{8, 2, 4},
		{8, 8, 1},
		{8, 16, 1}, // more lanes than budget: replications serialize
		{4, 3, 1},
		{1, 4, 1},
		{9, 4, 2},
		{8, 0, 8}, // degenerate shard count treated as serial
	}
	for _, tc := range cases {
		if got := ShardWorkers(tc.workers, tc.shards); got != tc.want {
			t.Errorf("ShardWorkers(%d, %d) = %d, want %d", tc.workers, tc.shards, got, tc.want)
		}
		if got := ShardWorkers(tc.workers, tc.shards); got*max(tc.shards, 1) > max(tc.workers, tc.shards) {
			t.Errorf("ShardWorkers(%d, %d) = %d oversubscribes", tc.workers, tc.shards, got)
		}
	}
}

// TestMapSeededPooledZeroAndNegativeItems: n <= 0 returns nil without
// spawning anything.
func TestMapSeededPooledZeroAndNegativeItems(t *testing.T) {
	calls := 0
	for _, n := range []int{0, -3} {
		got := MapSeededPooled(4, 1, n, func(i int, seed uint64, pool *sim.EventPool) int {
			calls++
			return i
		})
		if got != nil {
			t.Fatalf("n=%d: got %v, want nil", n, got)
		}
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty inputs", calls)
	}
}

// TestMapSeededPooledWorkersExceedItems: more workers than items still
// runs every item exactly once, in index order, each with a live pool.
func TestMapSeededPooledWorkersExceedItems(t *testing.T) {
	const n = 3
	got := MapSeededPooled(16, 99, n, func(i int, seed uint64, pool *sim.EventPool) uint64 {
		if pool == nil {
			t.Error("nil pool")
		}
		if want := sim.DeriveSeed(99, uint64(i)); seed != want {
			t.Errorf("item %d: seed %#x, want %#x", i, seed, want)
		}
		return seed ^ uint64(i)
	})
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if want := sim.DeriveSeed(99, uint64(i)) ^ uint64(i); v != want {
			t.Errorf("result[%d] = %#x, want %#x", i, v, want)
		}
	}
}

// TestMapSeededPooledWorkerCountEquivalence: the merged result slice is
// bit-identical for workers 1 and N even when each replication drives a
// real engine through the shared pool.
func TestMapSeededPooledWorkerCountEquivalence(t *testing.T) {
	run := func(workers int) []uint64 {
		return MapSeededPooled(workers, 0x9001, 12, func(i int, seed uint64, pool *sim.EventPool) uint64 {
			e := sim.NewEngineOpts(seed, sim.EngineOptions{Pool: pool})
			var sum uint64
			rng := e.RNG()
			for j := 0; j < 50; j++ {
				e.After(sim.Duration(1+rng.Intn(1000))*sim.Nanosecond, func() {
					sum += uint64(e.Now()) * (uint64(j) + 1)
				})
			}
			e.RunAll()
			return sum
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 7} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %#x, want %#x", w, i, got[i], want[i])
			}
		}
	}
}

// TestShardParallelismPreservesSeedDerivation is the satellite's core
// claim: running shard-parallel simulations *inside* replications does
// not perturb the splitmix64 seed each replication receives, nor the
// replication results — because lane seeds derive from the
// replication's own seed (sim.DeriveSeed(repSeed, lane)), never from a
// shared stream that concurrent lanes could race on.
func TestShardParallelismPreservesSeedDerivation(t *testing.T) {
	const base, n = 0xbead, 6
	until := sim.Time(2 * sim.Millisecond)

	runRep := func(shards, shardWorkers int) ([]uint64, []sim.ShardTickResult) {
		seeds := make([]uint64, n)
		results := MapSeeded(2, base, n, func(i int, seed uint64) sim.ShardTickResult {
			seeds[i] = seed
			cfg := shardTickCfg(shards)
			cfg.Seed = seed
			set, collect := sim.NewShardTick(cfg)
			RunSharded(set, until, shardWorkers)
			return collect()
		})
		return seeds, results
	}

	wantSeeds, wantResults := runRep(1, 1)
	for i, s := range wantSeeds {
		if want := sim.DeriveSeed(base, uint64(i)); s != want {
			t.Fatalf("replication %d: seed %#x, want DeriveSeed %#x", i, s, want)
		}
	}
	for _, tc := range []struct{ shards, workers int }{{2, 2}, {4, 4}, {4, ShardWorkers(0, 4)}} {
		seeds, results := runRep(tc.shards, tc.workers)
		for i := range wantSeeds {
			if seeds[i] != wantSeeds[i] {
				t.Errorf("shards=%d: replication %d seed %#x, want %#x", tc.shards, i, seeds[i], wantSeeds[i])
			}
			if results[i] != wantResults[i] {
				t.Errorf("shards=%d workers=%d: replication %d diverged:\n got %+v\nwant %+v",
					tc.shards, tc.workers, i, results[i], wantResults[i])
			}
		}
	}
}
