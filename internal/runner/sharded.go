package runner

import (
	"sync"

	"repro/internal/sim"
)

// RunSharded advances a sim.ShardSet to until, executing each lookahead
// window's per-lane jobs on a persistent pool of worker goroutines.
// This is the concurrent executor behind `rtsim -engine=sharded`: the
// sim package is single-threaded by decree (the nondeterminism linter
// bans goroutines from simulation packages), so the window protocol
// lives there (sim.ShardSet.RunExec) and the goroutines live here.
//
// The determinism contract matches the rest of the package: the result
// depends only on the set's model and until — never on the worker
// count, GOMAXPROCS, or which worker ran which lane. That holds because
// lanes share nothing inside a window (ShardSet's confinement rules)
// and the barrier between windows orders every lane's writes before the
// next window's reads; the -race leg of the shard tests hands the
// memory-model half of that claim to the race detector.
//
// workers is Workers-resolved and capped at the lane count; one worker
// (or one lane) degrades to the serial executor with no goroutines at
// all. A panic in a lane (a model bug — e.g. a cross-shard send inside
// the lookahead) is re-raised on the caller's goroutine after the
// window's remaining lanes drain.
func RunSharded(set *sim.ShardSet, until sim.Time, workers int) sim.Time {
	w := Workers(workers)
	if s := set.Shards(); w > s {
		w = s
	}
	if w <= 1 {
		return set.Run(until)
	}
	var (
		jobs     = make(chan func(), set.Shards())
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	defer close(jobs)
	for g := 0; g < w; g++ {
		go func() {
			for job := range jobs {
				func() {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					job()
				}()
			}
		}()
	}
	return set.RunExec(until, func(batch []func()) {
		wg.Add(len(batch))
		for _, j := range batch {
			jobs <- j
		}
		// The Wait is the window barrier: it orders every lane's writes
		// in this window before the merge/delivery the set performs next.
		wg.Wait()
		panicMu.Lock()
		r := panicVal
		panicMu.Unlock()
		if r != nil {
			panic(r)
		}
	})
}

// ShardWorkers divides a total worker budget between replication
// parallelism and shard parallelism: it returns how many *replications*
// may run concurrently when each replication internally runs
// shardsPerRun lanes in parallel, so that replications × lanes never
// oversubscribes the budget. The result is at least 1 — shard
// parallelism narrows replication parallelism, it never blocks it.
func ShardWorkers(workers, shardsPerRun int) int {
	w := Workers(workers)
	if shardsPerRun < 1 {
		shardsPerRun = 1
	}
	if n := w / shardsPerRun; n > 1 {
		return n
	}
	return 1
}
