// Package runner is the parallel replication engine behind the
// experiment harness. It shards independent replications of a
// deterministic simulation across a bounded pool of goroutines and
// returns their results in replication-index order, so that any merge
// the caller performs over the result slice is itself deterministic.
//
// # Determinism contract
//
// Every simulation in this repository is single-threaded and seeded;
// parallelism therefore lives strictly *between* replications, never
// inside one. The runner guarantees that its output depends only on
// (n, fn) — never on the worker count, GOMAXPROCS, or goroutine
// scheduling — because each replication writes to its own slot of the
// result slice and the slice is handed back in index order. Merging
// results sequentially over that slice (histogram merge, summary merge,
// sample append) thus produces bit-identical output for workers=1 and
// workers=N. Tests in this package and in internal/core assert that
// equivalence byte-for-byte.
//
// Seeds for replications are derived with sim.DeriveSeed(base, index)
// (splitmix64), so replications never share an RNG stream and nearby
// base seeds cannot collide the way additive offsets can.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Workers resolves a requested worker count: values <= 0 select
// GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (Workers-resolved) and returns the results in index order. Work is
// distributed by an atomic counter, so stragglers do not idle the pool;
// result placement is by index, so the output is independent of which
// worker computed what. A panic in fn is re-raised on the caller's
// goroutine after the remaining workers drain.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// MapSeeded is Map for seeded replications: replication i runs with
// seed sim.DeriveSeed(base, i).
func MapSeeded[T any](workers int, base uint64, n int, fn func(i int, seed uint64) T) []T {
	return Map(workers, n, func(i int) T {
		return fn(i, sim.DeriveSeed(base, uint64(i)))
	})
}

// MapSeededPooled is MapSeeded for replications that recycle event-node
// storage: each worker goroutine owns one sim.EventPool and hands it to
// every replication it executes (via kernel.Config.EventPool or
// sim.EngineOptions.Pool), so consecutive replications on the same
// worker run at zero allocations per event against warm nodes.
//
// Pool ownership follows the same discipline as engines and RNGs:
// worker-local, never shared across goroutines. Which replications
// share a pool depends on work-stealing order — which is exactly why
// pools must be invisible in results (generation numbers and free-list
// order never enter the dispatch order). The determinism contract above
// is unchanged: output depends only on (base, n, fn), and the core
// golden tests run workers=1 vs workers=N to hold pooled replication to
// bit-identical figures.
func MapSeededPooled[T any](workers int, base uint64, n int, fn func(i int, seed uint64, pool *sim.EventPool) T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		pool := sim.NewEventPool()
		for i := range out {
			out[i] = fn(i, sim.DeriveSeed(base, uint64(i)), pool)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			pool := sim.NewEventPool()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i, sim.DeriveSeed(base, uint64(i)), pool)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// Do runs the given heterogeneous jobs on up to workers goroutines and
// returns when all have completed. Each job communicates through the
// variables it captures; the WaitGroup inside Map orders those writes
// before Do returns.
func Do(workers int, jobs ...func()) {
	Map(workers, len(jobs), func(i int) struct{} {
		jobs[i]()
		return struct{}{}
	})
}
