package runner

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestMapSeededPooledCtxEquivalence: with a never-cancelled context the
// budgeted/cancellable variant must produce byte-identical output to
// MapSeededPooled for every worker count — same derived seeds, same
// index order.
func TestMapSeededPooledCtxEquivalence(t *testing.T) {
	fn := func(i int, seed uint64, pool *sim.EventPool) [2]uint64 {
		if pool == nil {
			t.Error("nil pool handed to replication")
		}
		return [2]uint64{uint64(i), seed}
	}
	want := MapSeededPooled(1, 99, 23, fn)
	for _, workers := range []int{1, 2, 4, 7} {
		got, err := MapSeededPooledCtx(context.Background(), workers, 99, 23, fn)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results diverge from MapSeededPooled", workers)
		}
	}
}

// TestMapSeededPooledCtxCancel: cancelling mid-run returns ctx.Err()
// promptly (no hang) and no partial result slice; replications already
// in flight finish, unstarted ones never run.
func TestMapSeededPooledCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = MapSeededPooledCtx(ctx, 2, 1, 64, func(i int, seed uint64, pool *sim.EventPool) int {
			if started.Add(1) == 2 {
				cancel() // cancel while replications are in flight
			}
			<-release
			return i
		})
	}()
	// Unblock the two in-flight replications after the cancel landed.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled map did not return (hang)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled map returned a partial result slice (%d entries)", len(out))
	}
	if n := started.Load(); n >= 64 {
		t.Fatalf("all %d replications ran despite cancellation", n)
	}
}

// TestMapSeededPooledCtxCancelledBeforeStart: a context that is already
// done never runs fn, on both the serial and the pooled path.
func TestMapSeededPooledCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		out, err := MapSeededPooledCtx(ctx, workers, 1, 8, func(i int, seed uint64, pool *sim.EventPool) int {
			ran = true
			return i
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil || ran {
			t.Fatalf("workers=%d: fn ran under a dead context", workers)
		}
	}
}

// TestMapSeededPooledBudget: a request over budget returns the typed
// *BudgetError immediately — fn never runs, nothing blocks — while a
// request within budget (or with an unlimited budget) runs normally.
func TestMapSeededPooledBudget(t *testing.T) {
	ran := false
	out, err := MapSeededPooledBudget(context.Background(), 2, 1, 10, 4, func(i int, seed uint64, pool *sim.EventPool) int {
		ran = true
		return i
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Requested != 10 || be.Budget != 4 || be.Unit != "replications" {
		t.Fatalf("BudgetError = %+v, want {10 4 replications}", *be)
	}
	if out != nil || ran {
		t.Fatal("over-budget request ran anyway")
	}

	for _, budget := range []int{10, 0, -1} { // exactly at budget, and unlimited
		got, err := MapSeededPooledBudget(context.Background(), 2, 1, 10, budget, func(i int, seed uint64, pool *sim.EventPool) int {
			return i * i
		})
		if err != nil {
			t.Fatalf("budget=%d: unexpected error %v", budget, err)
		}
		if len(got) != 10 || got[3] != 9 {
			t.Fatalf("budget=%d: wrong results %v", budget, got)
		}
	}
}

// TestCheckBudget pins the helper's contract for non-map cost models.
func TestCheckBudget(t *testing.T) {
	if err := CheckBudget(100, 0, "virtual-ms"); err != nil {
		t.Fatalf("unlimited budget refused: %v", err)
	}
	if err := CheckBudget(100, 100, "virtual-ms"); err != nil {
		t.Fatalf("at-budget request refused: %v", err)
	}
	err := CheckBudget(101, 100, "virtual-ms")
	var be *BudgetError
	if !errors.As(err, &be) || be.Unit != "virtual-ms" {
		t.Fatalf("err = %v, want *BudgetError with unit virtual-ms", err)
	}
}
