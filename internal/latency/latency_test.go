package latency

import (
	"math"
	"strings"
	"testing"
)

func TestBoundAt(t *testing.T) {
	b := Bound{ScaledNS: 1000, FixedNS: 500}
	if got := b.At(2); got != 1000 {
		t.Errorf("At(2) = %v, want 1000 (1000/2 + 500)", got)
	}
	if got := b.At(0); got != 1500 {
		t.Errorf("At(0) = %v, want 1500 (non-positive freq falls back to 1 GHz)", got)
	}
	sum := b.Add(Bound{ScaledNS: 10, FixedNS: 20})
	if sum != (Bound{ScaledNS: 1010, FixedNS: 520}) {
		t.Errorf("Add = %+v, want bucket-wise sum", sum)
	}
}

func TestSlowdown(t *testing.T) {
	m := Machine{BusContention: 0.055}
	if got := m.slowdown(); math.Abs(got-1.055) > 1e-12 {
		t.Errorf("slowdown = %v, want 1.055", got)
	}
	m.HyperThread = true
	m.HTSlowdown = 0.8
	if got, want := m.slowdown(), 1.055/0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("HT slowdown = %v, want %v", got, want)
	}
}

// TestRegionValueCap checks the splitSegments analogue: each segment of
// a run is individually capped at the critical-section limit, so even a
// statically unbounded segment contributes at most the cap — and with
// no cap (stock 2.4), it contributes +Inf.
func TestRegionValueCap(t *testing.T) {
	reg := Region{
		Name:  "seg:test#0",
		Cause: "lock",
		Segs: []SegBound{
			{Bound: Bound{ScaledNS: 100_000}},
			{Unbounded: true},
		},
	}
	capped := Machine{GHz: 1, MaxCritNS: 50_000}
	if got := capped.regionValue(reg); got != 100_000 {
		t.Errorf("capped regionValue = %v, want 100000 (50k capped + 50k cap for the unbounded seg)", got)
	}
	stock := Machine{GHz: 1}
	if got := stock.regionValue(reg); !math.IsInf(got, 1) {
		t.Errorf("uncapped regionValue = %v, want +Inf", got)
	}

	plain := Region{Name: "x", Bound: Bound{ScaledNS: 1000, FixedNS: 500}}
	if got := (Machine{GHz: 2}).regionValue(plain); got != 1000 {
		t.Errorf("segless regionValue = %v, want 1000", got)
	}
	if got := stock.regionValue(Region{Name: "y", Unbounded: true}); !math.IsInf(got, 1) {
		t.Errorf("segless unbounded regionValue = %v, want +Inf", got)
	}
}

// syntheticReport is a minimal complete report: every named region the
// envelope requires, one irq-off segment run, one lock hold.
func syntheticReport() *Report {
	return &Report{
		Tool: "test",
		Regions: []Region{
			{Name: "isr-cache-penalty", Cause: "overhead", Bound: Bound{ScaledNS: 100}},
			{Name: "isr-dispatch", Cause: "irq-off", Bound: Bound{ScaledNS: 1000}},
			{Name: "isr-overhead", Cause: "irq-off", Bound: Bound{ScaledNS: 50}},
			{Name: "irqoff:foo#0", Cause: "irq-off", Segs: []SegBound{{Bound: Bound{ScaledNS: 2000}}}},
			{Name: "softirq-budget", Cause: "softirq", Bound: Bound{ScaledNS: 5000}},
			{Name: "seg:bar#0", Cause: "lock", Segs: []SegBound{{Bound: Bound{ScaledNS: 3000}}}},
			{Name: "irq:rcim", Cause: "irq-handler", Bound: Bound{FixedNS: 400}},
			{Name: "wakeup-cost", Cause: "sched", Bound: Bound{ScaledNS: 30}},
			{Name: "idle-exit", Cause: "sched", Bound: Bound{ScaledNS: 20}},
			{Name: "pick-o1", Cause: "sched", Bound: Bound{ScaledNS: 10}},
			{Name: "ctx-switch", Cause: "sched", Bound: Bound{ScaledNS: 60}},
			{Name: "rcim-wait", Cause: "run", Bound: Bound{FixedNS: 5}},
		},
	}
}

func TestCompose(t *testing.T) {
	m := Machine{GHz: 1, NumCPUs: 2, MaxISRNest: 2}
	env, missing := Compose(syntheticReport(), m)
	if missing != nil {
		t.Fatalf("missing = %v, want none", missing)
	}
	// pen = 2 * 100; worst irq-off is the 2000ns segment run + pen,
	// beating the ISR frame's 1000 + pen.
	if env.IRQOffNS != 2200 {
		t.Errorf("IRQOffNS = %v, want 2200", env.IRQOffNS)
	}
	if env.SoftirqNS != 5200 {
		t.Errorf("SoftirqNS = %v, want 5200", env.SoftirqNS)
	}
	// One CPU ahead in the FIFO: worst hold (3000) dilated by the
	// irq-off and softirq work that can preempt the holder.
	if env.LockNS != 3000+2200+5200 {
		t.Errorf("LockNS = %v, want 10400", env.LockNS)
	}
	if env.ShieldedResponseNS != 50+400+30+20+10+60+5 {
		t.Errorf("ShieldedResponseNS = %v, want 575", env.ShieldedResponseNS)
	}

	if v, ok := env.CauseBound("spinlock"); !ok || v != env.LockNS {
		t.Errorf("CauseBound(spinlock) = %v,%v", v, ok)
	}
	if _, ok := env.CauseBound("migration"); ok {
		t.Error("CauseBound(migration) should be outside the claim")
	}
}

// TestComposeUnboundedLock checks the stock-vs-capped split: an audited
// unbounded lock hold drives the lock bound to +Inf on a kernel with no
// critical-section cap, and to a finite value once the cap applies.
func TestComposeUnboundedLock(t *testing.T) {
	r := syntheticReport()
	r.Regions = append(r.Regions, Region{
		Name: "bkl:tail#0", Cause: "lock", Allowed: true, Unbounded: true,
		Segs: []SegBound{{Unbounded: true}},
	})
	stock := Machine{GHz: 1, NumCPUs: 2, MaxISRNest: 2}
	env, missing := Compose(r, stock)
	if missing != nil {
		t.Fatalf("missing = %v, want none (unbounded lock is not a named requirement)", missing)
	}
	if !math.IsInf(env.LockNS, 1) {
		t.Errorf("stock LockNS = %v, want +Inf", env.LockNS)
	}
	if !strings.Contains(env.String(), "spinlock<=unbounded") {
		t.Errorf("String() = %q, want spinlock<=unbounded", env.String())
	}

	capped := stock
	capped.MaxCritNS = 4000
	env, _ = Compose(r, capped)
	// The capped heavy tail (4000) beats the 3000 hold.
	if env.LockNS != 4000+2200+5200 {
		t.Errorf("capped LockNS = %v, want 11400", env.LockNS)
	}
}

// TestComposeMissing checks that absent or unbounded required regions
// are reported by name, sorted and deduplicated.
func TestComposeMissing(t *testing.T) {
	r := syntheticReport()
	var kept []Region
	for _, reg := range r.Regions {
		if reg.Name == "rcim-wait" || reg.Name == "isr-cache-penalty" {
			continue
		}
		kept = append(kept, reg)
	}
	r.Regions = kept
	_, missing := Compose(r, Machine{GHz: 1, NumCPUs: 2, MaxISRNest: 2})
	if len(missing) != 2 || missing[0] != "isr-cache-penalty" || missing[1] != "rcim-wait" {
		t.Errorf("missing = %v, want [isr-cache-penalty rcim-wait]", missing)
	}
}

func TestReportSortAndLookup(t *testing.T) {
	r := &Report{Regions: []Region{{Name: "b"}, {Name: "a", Pos: "z:2"}, {Name: "a", Pos: "a:1"}}}
	r.Sort()
	if r.Regions[0].Pos != "a:1" || r.Regions[1].Pos != "z:2" || r.Regions[2].Name != "b" {
		t.Errorf("Sort order wrong: %+v", r.Regions)
	}
	if r.Region("b") == nil || r.Region("zz") != nil {
		t.Error("Region lookup wrong")
	}
}
