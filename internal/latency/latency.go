// Package latency defines the machine-readable static bounds report
// emitted by simlint's latbound analyzer and the envelope composition
// that turns per-region bounds into per-cause worst-episode bounds for
// a concrete kernel configuration.
//
// The report side is pure data: every interrupt-off, lock-held, and
// softirq region latbound roots in internal/kernel gets a Region entry
// whose Bound is a two-bucket worst case — ScaledNS nanoseconds of work
// specified at the 1 GHz reference frequency (divided by the config's
// CPUFreqGHz at composition time, mirroring Config.scale) plus FixedNS
// nanoseconds that are frequency-independent (device costs specified
// directly, like ISR handler bodies).
//
// The composition side mirrors how the dynamic attributor (package
// attrib) slices a response window into episodes: an episode is a
// maximal run of time charged to one cause, force-split at every
// IRQ/softirq trace record and at every cause change. Under that
// splitting, every irq-off episode lies inside a single statically
// enumerated region (one ISR frame slice, or one run of consecutive
// interrupts-disabled syscall segments), every softirq episode inside
// one budgeted bottom-half pass, and every spinlock episode inside one
// acquisition wait. Compose therefore produces, per cause, a bound on
// the worst single episode — the quantity reprocheck's
// latbound-envelope claim compares against attrib.Summary.WorstEpisode.
package latency

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kernel"
)

// Bound is a worst-case duration split into the two cost buckets the
// kernel model uses: reference-frequency work (divided by CPUFreqGHz at
// runtime via Config.scale) and fixed device time.
type Bound struct {
	// ScaledNS is worst-case work in nanoseconds at the 1 GHz reference
	// frequency; the concrete cost is ScaledNS / CPUFreqGHz.
	ScaledNS float64 `json:"scaled_ns"`
	// FixedNS is worst-case frequency-independent time in nanoseconds.
	FixedNS float64 `json:"fixed_ns"`
}

// At resolves the bound to concrete nanoseconds at freq GHz.
func (b Bound) At(ghz float64) float64 {
	if ghz <= 0 {
		ghz = 1
	}
	return b.ScaledNS/ghz + b.FixedNS
}

// Add sums two bounds bucket-wise.
func (b Bound) Add(o Bound) Bound {
	return Bound{ScaledNS: b.ScaledNS + o.ScaledNS, FixedNS: b.FixedNS + o.FixedNS}
}

// SegBound is the bound of one syscall segment inside a region built
// from a segment run (lock-held or interrupts-disabled). Keeping the
// per-segment structure lets Compose apply a kernel's critical-section
// cap the way splitSegments does at run time: per segment, not per run.
type SegBound struct {
	Bound Bound `json:"bound"`
	// Unbounded marks a segment with no finite static bound; under a
	// critical-section cap it still contributes at most the cap.
	Unbounded bool `json:"unbounded,omitempty"`
}

// Region is one statically bounded (or flagged) latency region.
type Region struct {
	// Name identifies the region: "irq:<line>" for an ISR handler,
	// "seg:<func>#<n>" for a lock-held or irq-off syscall segment run,
	// "bkl:<func>" for a big-kernel-lock hold, or a manual name from a
	// //simlint:region directive (isr-dispatch, softirq-budget, ...).
	Name string `json:"name"`
	// Cause buckets the region for envelope composition using the
	// attributor's vocabulary: "irq-off", "softirq", "lock", "sched",
	// "run", plus "irq-handler" and "overhead" for sub-terms that only
	// feed composed sums.
	Cause string `json:"cause"`
	// Pos is the file:line of the region root in the source tree.
	Pos string `json:"pos"`
	// Bound is the static worst case; meaningless when Unbounded.
	Bound Bound `json:"bound"`
	// Unbounded marks a region the analyzer could not bound.
	Unbounded bool `json:"unbounded,omitempty"`
	// Blame explains an unbounded region (the first unbounded terms in
	// the evaluation, innermost first).
	Blame string `json:"blame,omitempty"`
	// Allowed marks an audited //simlint:allow latbound exception.
	Allowed bool `json:"allowed,omitempty"`
	// Segs, for lock-held and interrupts-disabled segment runs, holds
	// the per-segment bounds making up the region, in execution order.
	// Compose caps each one at the machine's critical-section limit.
	Segs []SegBound `json:"segs,omitempty"`
}

// Report is the full bounds report simlint -bounds emits.
type Report struct {
	// Tool records the producer ("simlint/latbound").
	Tool string `json:"tool"`
	// Regions lists every rooted region, sorted by name for stable
	// serialization.
	Regions []Region `json:"regions"`
}

// Sort orders regions by name (then position) for stable output.
func (r *Report) Sort() {
	sort.Slice(r.Regions, func(i, j int) bool {
		if r.Regions[i].Name != r.Regions[j].Name {
			return r.Regions[i].Name < r.Regions[j].Name
		}
		return r.Regions[i].Pos < r.Regions[j].Pos
	})
}

// Region returns the named region, or nil.
func (r *Report) Region(name string) *Region {
	for i := range r.Regions {
		if r.Regions[i].Name == name {
			return &r.Regions[i]
		}
	}
	return nil
}

// Machine is the envelope-relevant slice of a kernel configuration.
type Machine struct {
	GHz           float64
	NumCPUs       int
	HyperThread   bool
	HTSlowdown    float64
	BusContention float64
	MaxISRNest    int
	// MaxCritNS is the kernel's critical-section length cap in
	// nanoseconds (splitSegments' limit), or 0 when the kernel has none
	// (stock 2.4) — the RedHawk/low-latency mechanism that makes even
	// statically unbounded lock holds finite.
	MaxCritNS float64
}

// FromConfig extracts the envelope parameters from a kernel config.
func FromConfig(cfg *kernel.Config) Machine {
	return Machine{
		GHz:           cfg.CPUFreqGHz,
		NumCPUs:       cfg.NumCPUs(),
		HyperThread:   cfg.HyperThreading,
		HTSlowdown:    cfg.Timing.HTSlowdown,
		BusContention: cfg.Timing.BusContention,
		MaxISRNest:    kernel.MaxISRNest,
		MaxCritNS:     float64(cfg.MaxCritSection()),
	}
}

// slowdown is the worst-case execution dilation every region bound is
// multiplied by: bus contention always applies in the worst case, and a
// hyper-threaded sibling slows the core to HTSlowdown of its speed.
func (m Machine) slowdown() float64 {
	s := 1 + m.BusContention
	if m.HyperThread && m.HTSlowdown > 0 {
		s /= m.HTSlowdown
	}
	return s
}

// value resolves a region bound to worst-case wall nanoseconds on m.
func (m Machine) value(b Bound) float64 { return b.At(m.GHz) * m.slowdown() }

// regionValue resolves a whole region to wall nanoseconds, applying the
// machine's critical-section cap to segment-structured regions the way
// splitSegments does at run time: each segment is individually capped
// (the kernel splits longer ones, releasing the lock in between), so a
// run contributes at most the sum of its capped segments — and even a
// statically unbounded segment contributes at most the cap. Without a
// cap (stock), an unbounded segment or region is +Inf.
func (m Machine) regionValue(reg Region) float64 {
	cap := m.MaxCritNS * m.slowdown()
	if len(reg.Segs) == 0 {
		if reg.Unbounded {
			return math.Inf(1)
		}
		return m.value(reg.Bound)
	}
	var sum float64
	for _, s := range reg.Segs {
		v := math.Inf(1)
		if !s.Unbounded {
			v = m.value(s.Bound)
		}
		if m.MaxCritNS > 0 && v > cap {
			v = cap
		}
		sum += v
	}
	return sum
}

// Envelope is the per-cause worst-episode bound for one configuration,
// in wall-clock nanoseconds.
type Envelope struct {
	// IRQOffNS bounds one contiguous interrupt-off episode: the longest
	// single ISR frame (entry + handler + exit + nested-ISR cache
	// refills) or the longest run of interrupts-disabled segments.
	IRQOffNS float64 `json:"irq_off_ns"`
	// SoftirqNS bounds one bottom-half pass: the budget cap plus
	// nested-ISR cache refills charged to the pass frame.
	SoftirqNS float64 `json:"softirq_ns"`
	// LockNS bounds one spinlock acquisition wait: every other CPU
	// ahead in the FIFO, each holding for the worst hold dilated by the
	// interrupt and bottom-half work that can preempt a holder.
	LockNS float64 `json:"lock_ns"`
	// ShieldedResponseNS bounds the shielded-CPU interrupt response:
	// RCIM delivery and handler, wakeup, idle exit, O(1) pick, context
	// switch, and the woken task's return path. This is the static
	// analogue of the paper's sub-30 microsecond guarantee.
	ShieldedResponseNS float64 `json:"shielded_response_ns"`
}

// ShieldedPath names the regions that sum to the shielded-CPU response
// bound, in delivery order. Every name must be present and bounded in
// the report for ShieldedResponseNS to be finite.
var ShieldedPath = []string{
	"isr-overhead", // IRQ entry/exit microcode around the handler
	"irq:rcim",     // the RCIM distinct-interrupt handler body
	"wakeup-cost",  // waking the blocked responder
	"idle-exit",    // IPI + idle-loop exit on the shielded CPU
	"pick-o1",      // O(1) scheduler pick
	"ctx-switch",   // context switch + worst cache refill
	"rcim-wait",    // the responder's own syscall return path
}

// Compose builds the per-cause envelope from a bounds report for one
// machine. Segment-structured regions are capped at the machine's
// critical-section limit (the splitSegments mechanism); a region that
// stays unbounded — an audited heavy-tail hold on a kernel with no cap
// — drives its cause bound to +Inf, so the envelope never certifies
// less than the tree contains. The returned missing list names any
// unbounded/absent region required by name (penalty, budget, shielded
// path); the caller decides whether that is fatal.
func Compose(r *Report, m Machine) (Envelope, []string) {
	var missing []string
	inf := false // set when a required term is absent
	val := func(name string) float64 {
		reg := r.Region(name)
		if reg == nil || reg.Unbounded {
			missing = append(missing, name)
			inf = true
			return 0
		}
		return m.value(reg.Bound)
	}

	// Cache refills charged to a frame each time a nested ISR returns
	// over it; depth is capped at MaxISRNest.
	pen := float64(m.MaxISRNest) * val("isr-cache-penalty")

	// Worst single ISR frame: dispatch overhead joined over every
	// registered handler, plus refills.
	isr := val("isr-dispatch") + pen

	env := Envelope{}
	env.IRQOffNS = isr
	for _, reg := range r.Regions {
		if reg.Cause != "irq-off" {
			continue
		}
		switch reg.Name {
		case "isr-dispatch", "isr-overhead":
			continue // already folded into isr
		}
		// regionValue caps segment runs at the machine's critical-section
		// limit; a region that stays unbounded (no cap) makes the cause
		// bound +Inf — the claim degrades to trivially true rather than
		// silently certifying less than the tree contains.
		if v := m.regionValue(reg) + pen; v > env.IRQOffNS {
			env.IRQOffNS = v
		}
	}

	env.SoftirqNS = val("softirq-budget") + pen

	// Spinlock wait: FIFO queue of up to NumCPUs-1 CPUs ahead, each
	// holding for the worst static hold, dilated by the interrupt and
	// bottom-half work that can run over a holder.
	var hold float64
	for _, reg := range r.Regions {
		if reg.Cause != "lock" {
			continue
		}
		if v := m.regionValue(reg); v > hold {
			hold = v
		}
	}
	if n := m.NumCPUs - 1; n > 0 {
		env.LockNS = float64(n) * (hold + env.IRQOffNS + env.SoftirqNS)
	}

	for _, name := range ShieldedPath {
		env.ShieldedResponseNS += val(name)
	}
	if inf {
		sort.Strings(missing)
		return env, dedupe(missing)
	}
	return env, nil
}

func dedupe(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || names[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// CauseBound maps an attributor cause name to the composed episode
// bound, for the causes the envelope covers. ok is false for causes
// outside the claim (sched, migration, run).
func (e Envelope) CauseBound(cause string) (float64, bool) {
	switch cause {
	case "irq-off":
		return e.IRQOffNS, true
	case "softirq":
		return e.SoftirqNS, true
	case "spinlock":
		return e.LockNS, true
	}
	return 0, false
}

// String renders the envelope for reports.
func (e Envelope) String() string {
	ns := func(v float64) string {
		if math.IsInf(v, 1) {
			return "unbounded"
		}
		return fmt.Sprintf("%.0fns", v)
	}
	return fmt.Sprintf("irq-off<=%s softirq<=%s spinlock<=%s shielded-response<=%s",
		ns(e.IRQOffNS), ns(e.SoftirqNS), ns(e.LockNS), ns(e.ShieldedResponseNS))
}
