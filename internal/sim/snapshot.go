package sim

import (
	"fmt"
	"sort"
	"sync" //simlint:allow nondeterminism guards only the process-global kind intern table below; nothing on a simulation path locks

	"repro/internal/snapshot"
)

// EventKind identifies a registered, snapshot-restorable event
// callback constructor. Kind values are process-local (assigned in
// registration order); only the kind *name* is ever serialised, so two
// processes agree on kinds by name, never by number. The zero kind
// means "untagged": a plain closure that cannot cross a snapshot
// boundary.
type EventKind uint32

// EventTag is the serialisable identity of a scheduled callback: which
// registered kind rebuilds it, plus up to three constructor arguments
// (object ids, CPU numbers, PIDs — whatever the kind's rebuilder
// documents). It is a plain value, so tagging an event allocates
// nothing.
type EventTag struct {
	Kind       EventKind
	A0, A1, A2 uint64
}

var (
	eventKindsMu sync.Mutex
	//simlint:allow globalstate process-wide intern table, mutex-guarded and append-only; snapshots store names, never ids, so registration order is unobservable
	eventKindNames []string
	//simlint:allow globalstate name-to-kind intern map, mutex-guarded and idempotent; written only at registration time
	eventKindByNam map[string]EventKind
)

// RegisterEventKind interns an event-kind name and returns its
// process-local id. Registration is idempotent — the same name always
// returns the same kind — and normally happens in package inits, but a
// restore may also intern names lazily. Empty names panic.
func RegisterEventKind(name string) EventKind {
	if name == "" {
		panic("sim: RegisterEventKind with empty name")
	}
	eventKindsMu.Lock()
	defer eventKindsMu.Unlock()
	if eventKindByNam == nil {
		eventKindByNam = make(map[string]EventKind)
	}
	if k, ok := eventKindByNam[name]; ok {
		return k
	}
	eventKindNames = append(eventKindNames, name)
	k := EventKind(len(eventKindNames)) // ids start at 1; 0 = untagged
	eventKindByNam[name] = k
	return k
}

// String returns the kind's registered name ("" for the zero kind).
func (k EventKind) String() string {
	if k == 0 {
		return ""
	}
	eventKindsMu.Lock()
	defer eventKindsMu.Unlock()
	if int(k) > len(eventKindNames) {
		return fmt.Sprintf("eventkind(%d)", uint32(k))
	}
	return eventKindNames[k-1]
}

// Tag builds an EventTag for a registered kind with its arguments.
func (k EventKind) Tag(a0, a1, a2 uint64) EventTag {
	return EventTag{Kind: k, A0: a0, A1: a1, A2: a2}
}

// RestoredEvent is one pending event read back from a snapshot:
// everything about the occurrence except its callback, which the caller
// rebuilds from (Kind, A0..A2) through its registered constructor and
// hands to RestoreEvent.
type RestoredEvent struct {
	At         Time
	Seq        uint64
	Pinned     bool
	Shard      int32
	Kind       string
	A0, A1, A2 uint64
}

// engineSection is the engine's section name in a snapshot image.
const engineSection = "sim.engine"

// SnapshotTo serialises the engine — clock, sequence counter, dispatch
// statistics, tie-break salt, shard hint, RNG stream, and every pending
// event — into one "sim.engine" section.
//
// Pending events are written sorted by the eventOrder dispatch order,
// which makes the bytes canonical: ladder, heap and sharded queues all
// produce the identical section for the same simulation state (queue
// internals are never serialised — restore re-pushes the events, and
// any implementation realises the same total order). Lazily-cancelled
// nodes are dropped: they have no observable future.
//
// Every pending event must carry a tag (ScheduleTagged and friends);
// an anonymous closure in flight is an error naming the offending
// instant, because no process can rebuild it.
func (e *Engine) SnapshotTo(w *snapshot.Writer) error {
	var pending []*eventNode
	e.q.each(func(n *eventNode) {
		if n.state == nodePending {
			pending = append(pending, n)
		}
	})
	sort.Slice(pending, func(i, j int) bool { return e.ord.less(pending[i], pending[j]) })

	// Intern kind names in first-appearance order (deterministic: the
	// event list is sorted).
	var names []string
	idx := make(map[EventKind]uint64)
	for _, n := range pending {
		if n.tag.Kind == 0 {
			return fmt.Errorf("sim: snapshot: untagged event in flight at %v (seq %d): scheduled by a plain closure, not a registered kind", n.At, n.seq)
		}
		if _, ok := idx[n.tag.Kind]; !ok {
			idx[n.tag.Kind] = uint64(len(names))
			names = append(names, n.tag.Kind.String())
		}
	}

	w.Begin(engineSection)
	w.I64(1, int64(e.now))
	w.U64(2, e.nextSeq)
	w.U64(3, e.fired)
	w.U64(4, e.ord.salt)
	w.I64(5, int64(e.shardHint))
	w.U64(6, e.rng.State())
	w.U64(7, uint64(len(names)))
	for _, name := range names {
		w.Str(8, name)
	}
	w.U64(9, uint64(len(pending)))
	for _, n := range pending {
		w.I64(10, int64(n.At))
		w.U64(11, n.seq)
		w.Bool(12, n.pinned)
		w.I64(13, int64(n.shard))
		w.U64(14, idx[n.tag.Kind])
		w.U64(15, n.tag.A0)
		w.U64(16, n.tag.A1)
		w.U64(17, n.tag.A2)
	}
	w.End()
	return nil
}

// RestoreState rewrites the engine to a snapshot's state: it drains and
// recycles everything currently queued (the boot events of a freshly
// reconstructed machine), then overwrites the clock, sequence counter,
// salt, shard hint and RNG stream from the image. The snapshot's
// pending events are returned, not queued — the caller rebuilds each
// callback from its kind and pushes it back with RestoreEvent. Between
// RestoreState and the first RestoreEvent the queue is empty, so a
// warm-start caller may install a different tie-break salt with
// PerturbTiebreaks.
func (e *Engine) RestoreState(r *snapshot.Reader) ([]RestoredEvent, error) {
	for e.q.len() > 0 {
		n := e.q.pop()
		e.sanOnPop(n)
		if n.state == nodePending {
			e.live--
		}
		e.pool.put(n)
	}
	e.sanOnRestore()
	e.stopped = false

	r.Section(engineSection)
	e.now = Time(r.I64(1))
	e.nextSeq = r.U64(2)
	e.fired = r.U64(3)
	salt := r.U64(4)
	e.ord.salt = salt
	e.q.setSalt(salt)
	e.shardHint = int32(r.I64(5))
	e.rng.SetState(r.U64(6))
	names := make([]string, r.U64(7))
	for i := range names {
		names[i] = r.Str(8)
	}
	evs := make([]RestoredEvent, 0, r.U64(9))
	for i := 0; i < cap(evs); i++ {
		ev := RestoredEvent{
			At:     Time(r.I64(10)),
			Seq:    r.U64(11),
			Pinned: r.Bool(12),
			Shard:  int32(r.I64(13)),
		}
		ki := r.U64(14)
		ev.A0, ev.A1, ev.A2 = r.U64(15), r.U64(16), r.U64(17)
		if r.Err() != nil {
			break
		}
		if ki >= uint64(len(names)) {
			return nil, fmt.Errorf("sim: restore: event kind index %d out of range (%d names)", ki, len(names))
		}
		ev.Kind = names[ki]
		if ev.At < e.now {
			return nil, fmt.Errorf("sim: restore: event %q at %v before snapshot clock %v", ev.Kind, ev.At, e.now)
		}
		if ev.Seq >= e.nextSeq {
			return nil, fmt.Errorf("sim: restore: event %q seq %d not below next sequence %d", ev.Kind, ev.Seq, e.nextSeq)
		}
		evs = append(evs, ev)
	}
	r.EndSection()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

// RestoreEvent re-queues one snapshot event with its rebuilt callback.
// The occurrence keeps its original sequence number, fire time, pinned
// class, shard placement and tag — so the restored engine dispatches
// the identical (At, key, seq) total order the snapshotted one would
// have. It returns the new handle for owners that hold one (timer
// events, armed frame completions).
func (e *Engine) RestoreEvent(rev RestoredEvent, fn func()) Event {
	if fn == nil {
		panic(fmt.Sprintf("sim: RestoreEvent %q with nil callback", rev.Kind))
	}
	if rev.At < e.now {
		panic(fmt.Sprintf("sim: RestoreEvent %q at %v before now %v", rev.Kind, rev.At, e.now))
	}
	if rev.Seq >= e.nextSeq {
		panic(fmt.Sprintf("sim: RestoreEvent %q seq %d not below next sequence %d", rev.Kind, rev.Seq, e.nextSeq))
	}
	n := e.pool.get()
	n.At = rev.At
	n.seq = rev.Seq
	n.fn = fn
	n.pinned = rev.Pinned
	n.shard = rev.Shard
	n.tag = EventTag{Kind: RegisterEventKind(rev.Kind), A0: rev.A0, A1: rev.A1, A2: rev.A2}
	e.q.push(n)
	e.live++
	e.sanOnSchedule(n)
	return Event{n: n, gen: n.gen}
}

// NextEventInfo returns the identity of the next pending event — fire
// time, sequence number and registered kind name ("" when untagged) —
// without dispatching it. The time-travel bisector drives two restored
// replicas in lockstep on this.
func (e *Engine) NextEventInfo() (at Time, seq uint64, kind string, ok bool) {
	n := e.peekLive()
	if n == nil {
		return 0, 0, "", false
	}
	return n.At, n.seq, n.tag.Kind.String(), true
}

func init() {
	snapshot.RegisterState(Engine{}, snapshot.Manifest{
		"now":       "codec",
		"q":         "skip: queue internals are never serialised — restore re-pushes the pending events and every queue kind realises the identical eventOrder total order (diffqueue/shard differential harnesses)",
		"kind":      "skip: reconstruction input — the restoring process picks its own queue implementation; dispatch order is implementation-invariant",
		"pool":      "skip: free-list contents, generation counters and traffic stats never enter eventOrder; pooled vs fresh nodes are proven result-identical by the workers-pool golden tests",
		"ord":       "codec",
		"nextSeq":   "codec",
		"live":      "skip: derived — recomputed by RestoreEvent re-pushes",
		"rng":       "codec",
		"stopped":   "skip: transient run-loop flag; restore clears it (a snapshot is taken between events, never inside Stop handling)",
		"fired":     "codec",
		"san":       "skip: build-tag-gated shadow checker state; sanOnRestore resets its watermark because it re-derives everything else from live traffic",
		"shardHint": "codec",
	})
	snapshot.RegisterState(RNG{}, snapshot.Manifest{
		"state": "codec",
	})
	snapshot.RegisterState(eventNode{}, snapshot.Manifest{
		"At":     "codec",
		"seq":    "codec",
		"gen":    "skip: node identity and generation never enter eventOrder; restored events get fresh nodes and owners get fresh handles via RestoreEvent",
		"fn":     "codec", // rebuilt via the tag's registered kind constructor
		"state":  "skip: only pending nodes are serialised; cancelled nodes have no observable future and free nodes are pool storage",
		"pinned": "codec",
		"shard":  "codec",
		"tag":    "codec",
	})
}
