package sim

// Shard-tick scenario: the canonical shard-confined workload behind the
// serial-vs-sharded differential oracle and the BENCH_engine.json
// serial-vs-sharded entry.
//
// N simulated CPUs each run a jittered local timer; every IPIEvery-th
// tick a CPU raises an IPI to its ring neighbour, arriving exactly one
// lookahead later — the minimum legal cross-shard latency, i.e. the
// hardest case for the window protocol. Each CPU folds its activity
// into a checksum built only from lane-invariant inputs:
//
//   - its own ID and per-event counters,
//   - the engine clock at dispatch (event *times* are placement-
//     independent; only storage routing varies),
//   - its private RNG stream, seeded DeriveSeed(seed, cpu) — never the
//     lane engine's RNG, whose draw interleaving depends on which CPUs
//     share a lane.
//
// Checksums combine by addition, so two events at the same instant
// commute: the result is invariant under shard count, worker count,
// and tie-break perturbation. That invariance is the oracle — shards
// 1, 2, 4 must produce the identical ShardTickResult bit-for-bit.
type ShardTickConfig struct {
	// CPUs is the simulated CPU count (one tick stream each).
	CPUs int
	// Shards is the lane count; CPUs spread round-robin across lanes.
	Shards int
	// Lookahead is the cross-lane latency floor; IPIs travel at exactly
	// this delay. Non-positive degrades NewShardSet to serial.
	Lookahead Duration
	// Period is the mean local-tick period (jittered ±10% per tick from
	// the CPU's private RNG).
	Period Duration
	// IPIEvery raises an IPI every IPIEvery-th tick; 0 disables IPIs.
	IPIEvery int
	// Seed is the base seed; CPU c uses DeriveSeed(Seed, c).
	Seed uint64
	// Queue overrides the per-lane engine queue kind ("" = default).
	Queue QueueKind
	// Salt installs a tie-break perturbation on every lane before
	// anything is scheduled. The scenario's checksum is perturbation-
	// invariant by construction, so every salt must reproduce the
	// salt-0 result bit-for-bit.
	Salt uint64
}

// ShardTickResult is the scenario's complete observable output.
type ShardTickResult struct {
	Checksum uint64 `json:"checksum"`
	Ticks    uint64 `json:"ticks"`
	IPIs     uint64 `json:"ipis"`
	Windows  uint64 `json:"windows"`
	// Events is the total dispatched across all lanes.
	Events uint64 `json:"events"`
}

// shardTickCPU is one simulated CPU's private state. Everything here is
// confined to the owning lane's goroutine during a window.
type shardTickCPU struct {
	id     int
	lane   *Lane
	rng    *RNG
	period Duration
	// ipiDelay is the cross-lane send latency (= lookahead when
	// positive).
	ipiDelay Duration
	ipiEvery int
	dest     *shardTickCPU

	ticks uint64
	ipis  uint64
	sum   uint64

	// tickFn/ipiFn are prebound so the steady-state hot path schedules
	// without allocating closures.
	tickFn func()
	ipiFn  func()
}

func (c *shardTickCPU) tick() {
	now := c.lane.Eng.Now()
	c.ticks++
	c.sum += tiebreakMix(uint64(c.id)<<32^c.ticks, uint64(now)^c.rng.Uint64())
	if c.ipiEvery > 0 && c.ticks%uint64(c.ipiEvery) == 0 && c.dest != c {
		c.lane.Send(c.dest.lane.id, now.Add(c.ipiDelay), uint64(c.id), c.dest.ipiFn)
	}
	c.lane.Eng.Schedule(now.Add(c.rng.Jitter(c.period, 0.1)), c.tickFn)
}

// ipi runs on the *destination* CPU's lane. It deliberately draws no
// RNG: a same-instant tick/IPI pair on one CPU must commute, and the
// RNG stream is consumed only by ticks.
func (c *shardTickCPU) ipi() {
	now := c.lane.Eng.Now()
	c.ipis++
	c.sum += tiebreakMix(uint64(c.id)<<32^(c.ipis<<1), uint64(now))
}

// NewShardTick builds the scenario on a fresh ShardSet and returns the
// set (run it with Run, RunExec, or runner.RunSharded) plus a collector
// that snapshots the result. cfg.Shards and cfg.Lookahead feed
// NewShardSet directly, so a degenerate lookahead exercises the serial
// fallback.
func NewShardTick(cfg ShardTickConfig) (*ShardSet, func() ShardTickResult) {
	if cfg.CPUs < 1 {
		panic("sim: shardtick needs >= 1 CPU")
	}
	if cfg.Period <= 0 {
		panic("sim: shardtick needs a positive period")
	}
	set := NewShardSet(cfg.Shards, cfg.Lookahead, cfg.Seed, EngineOptions{Queue: cfg.Queue})
	if cfg.Salt != 0 {
		set.PerturbTiebreaks(cfg.Salt)
	}
	ipiDelay := cfg.Lookahead
	if ipiDelay <= 0 {
		ipiDelay = cfg.Period
	}
	cpus := make([]*shardTickCPU, cfg.CPUs)
	for i := range cpus {
		c := &shardTickCPU{
			id:       i,
			lane:     set.Lane(i % set.Shards()),
			rng:      NewRNG(DeriveSeed(cfg.Seed, uint64(i))),
			period:   cfg.Period,
			ipiDelay: ipiDelay,
			ipiEvery: cfg.IPIEvery,
		}
		c.tickFn = c.tick
		c.ipiFn = c.ipi
		cpus[i] = c
	}
	for i, c := range cpus {
		c.dest = cpus[(i+1)%len(cpus)]
	}
	for _, c := range cpus {
		// Distinct start offsets keep the first window from being one
		// giant same-instant batch; the RNG jitter desynchronises the
		// rest. The hint confines each CPU's stream to its lane's shard
		// when the lane engine itself runs the sharded queue.
		c.lane.Eng.SetShardHint(c.id)
		start := Time(1 + c.id).Add(c.rng.Jitter(c.period, 0.1))
		c.lane.Eng.Schedule(start, c.tickFn)
	}
	collect := func() ShardTickResult {
		var r ShardTickResult
		for _, c := range cpus {
			r.Checksum += c.sum
			r.Ticks += c.ticks
			r.IPIs += c.ipis
		}
		r.Windows = set.Windows()
		for i := 0; i < set.Shards(); i++ {
			r.Events += set.Lane(i).Eng.Fired()
		}
		return r
	}
	return set, collect
}
