package sim

import "fmt"

// refHeap is the reference binary min-heap over eventOrder. It is the
// straightforward implementation the original engine shipped with
// (minus index back-pointers, which lazy cancellation made
// unnecessary), kept as the ground truth the ladder queue is diffed
// against and selectable for A/B runs via QueueHeap.
type refHeap struct {
	ord   eventOrder
	items []*eventNode
}

func newRefHeap() *refHeap { return &refHeap{} }

func (h *refHeap) setSalt(salt uint64) { h.ord.salt = salt }

func (h *refHeap) len() int { return len(h.items) }

func (h *refHeap) push(n *eventNode) {
	//simlint:allow hotalloc heap growth is amortized O(1); capacity persists across pops like the ladder's buckets
	h.items = append(h.items, n)
	h.up(len(h.items) - 1)
}

func (h *refHeap) peek() *eventNode {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *refHeap) pop() *eventNode {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *refHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ord.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *refHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && h.ord.less(h.items[right], h.items[left]) {
			min = right
		}
		if !h.ord.less(h.items[min], h.items[i]) {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

func (h *refHeap) each(fn func(*eventNode)) {
	for _, n := range h.items {
		fn(n)
	}
}

func (h *refHeap) validate(fail func(string)) {
	for i := 1; i < len(h.items); i++ {
		parent := (i - 1) / 2
		if h.ord.less(h.items[i], h.items[parent]) {
			fail(fmt.Sprintf("refheap: heap property violated at index %d (parent %d)", i, parent))
			return
		}
	}
}
