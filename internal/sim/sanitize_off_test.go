//go:build !simsan

package sim

import "testing"

func TestSanitizerDisabledByDefault(t *testing.T) {
	if SanitizerEnabled() {
		t.Fatal("SanitizerEnabled() = true without -tags simsan")
	}
}
