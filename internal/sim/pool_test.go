package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustPanicContaining(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want message containing %q", r, substr)
		}
	}()
	fn()
}

// Reuse-after-fire: once an event fires its node belongs to the pool;
// freeing it again must fail loudly with a generation mismatch.
func TestPoolReuseAfterFirePanics(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(1, func() {})
	e.RunAll()
	mustPanicContaining(t, "generation mismatch", func() { e.pool.put(ev.n) })
}

// Reuse-after-cancel: a cancelled node is freed when the queue drains
// past it; a second free is the same double-free.
func TestPoolReuseAfterCancelPanics(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(1, func() {})
	e.Cancel(ev)
	e.Run(10) // drains the lazily-cancelled node and recycles it
	mustPanicContaining(t, "generation mismatch", func() { e.pool.put(ev.n) })
}

// A free-list node that was mutated behind the pool's back is detected
// at get() time, before it can be handed to a second owner.
func TestPoolGetDetectsCorruptedFreeNode(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	e.RunAll()
	if len(e.pool.free) == 0 {
		t.Fatal("expected a recycled node on the free list")
	}
	e.pool.free[len(e.pool.free)-1].state = nodePending
	mustPanicContaining(t, "generation mismatch", func() { e.pool.get() })
}

// A handle claiming a generation its node has not reached is forged or
// corrupt; Cancel and Reschedule must refuse it loudly.
func TestAheadGenerationHandlePanics(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(1, func() {})
	forged := Event{n: ev.n, gen: ev.gen + 1}
	mustPanicContaining(t, "generation mismatch", func() { e.Cancel(forged) })
	mustPanicContaining(t, "generation mismatch", func() { e.Reschedule(forged, 5) })
}

// The load-bearing safety property of pooling: a stale handle whose
// node has been recycled for an unrelated event must not be able to
// touch the new occupant.
func TestStaleHandleCannotCancelRecycledNode(t *testing.T) {
	e := NewEngine(1)
	old := e.Schedule(1, func() {})
	e.RunAll() // fires; node goes back to the pool
	fired := false
	fresh := e.Schedule(2, func() { fired = true })
	if fresh.n != old.n {
		t.Fatal("pool did not recycle the node; test premise broken")
	}
	e.Cancel(old) // stale: one generation behind
	if !fresh.Pending() {
		t.Fatal("stale Cancel reached the recycled node's new occupant")
	}
	if ev := e.Reschedule(old, 9); ev.Valid() {
		t.Fatal("stale Reschedule returned a live handle")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire after stale-handle operations")
	}
}

// A callback cancelling its own (already firing) event is a stale
// no-op — the node was recycled before the callback ran.
func TestCancelSelfDuringDispatchIsNoOp(t *testing.T) {
	e := NewEngine(1)
	var self Event
	ran := false
	self = e.Schedule(1, func() {
		ran = true
		e.Cancel(self) // our own node, already freed: must be quiet
	})
	e.RunAll()
	if !ran {
		t.Fatal("event did not fire")
	}
}

// Double-cancel across a dispatch boundary: cancel, let the queue drain
// the node, cancel again once the node has a new occupant.
func TestDoubleCancelAcrossRecycle(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(1, func() { t.Fatal("cancelled event fired") })
	e.Cancel(ev)
	e.Cancel(ev) // immediate double-cancel: no-op
	e.Run(5)     // drain + recycle
	fired := false
	fresh := e.Schedule(6, func() { fired = true })
	e.Cancel(ev) // stale double-cancel against the recycled node
	e.RunAll()
	if !fired {
		t.Fatal("fresh event was killed by a stale double-cancel")
	}
	_ = fresh
}

// Steady-state churn must run entirely off the free list: after the
// first lap, no new nodes are allocated.
func TestPoolSteadyStateReuses(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 1000; i++ {
		e.After(Duration(i%8)*Microsecond, func() {})
		e.Step()
	}
	st := e.PoolStats()
	if st.Reuses < 900 {
		t.Fatalf("pool stats %+v: expected steady-state reuse, got %d reuses over 1000 events", st, st.Reuses)
	}
	if st.Allocs > 100 {
		t.Fatalf("pool stats %+v: %d allocations for a depth-8 churn loop", st, st.Allocs)
	}
}

// NoPool mode is the alloc-per-event reference: the free list stays
// empty and every get allocates, while handle-staleness semantics are
// unchanged (gen still bumps on put).
func TestNoPoolModeAllocatesEveryEvent(t *testing.T) {
	e := NewEngineOpts(1, EngineOptions{NoPool: true})
	ev := e.Schedule(1, func() {})
	e.RunAll()
	if ev.Pending() {
		t.Fatal("fired event still pending in NoPool mode")
	}
	for i := 0; i < 100; i++ {
		e.After(Duration(i%8)*Microsecond, func() {})
		e.Step()
	}
	st := e.PoolStats()
	if st.Reuses != 0 {
		t.Fatalf("NoPool engine reused %d nodes", st.Reuses)
	}
	if st.Allocs != 101 {
		t.Fatalf("NoPool engine allocated %d nodes, want 101", st.Allocs)
	}
	if st.Free != 0 {
		t.Fatalf("NoPool engine retained %d free nodes", st.Free)
	}
}

// Sharing one pool across sequential engines (the replication runner's
// per-worker pattern) must be invisible in results.
func TestSharedPoolAcrossSequentialEnginesIsInvisible(t *testing.T) {
	run := func(opts EngineOptions) []Time {
		e := NewEngineOpts(9, opts)
		var fired []Time
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(Time((i*37)%50), func() { fired = append(fired, e.Now()+Time(i)) })
		}
		e.RunAll()
		return fired
	}
	pool := NewEventPool()
	a := run(EngineOptions{Pool: pool}) // cold pool
	b := run(EngineOptions{Pool: pool}) // warm pool: recycled nodes, bumped gens
	c := run(EngineOptions{})           // private pool
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("dispatch %d diverged across pool configurations: cold %v, warm %v, private %v",
				i, a[i], b[i], c[i])
		}
	}
	if st := pool.Stats(); st.Reuses == 0 {
		t.Fatalf("shared pool was never reused: %+v", st)
	}
}

// Property: for any op stream, pool counters balance — every node is
// either free or live, puts never exceed gets, and the free list never
// holds a pending node.
func TestQuickPoolAccounting(t *testing.T) {
	f := func(ops []byte) bool {
		e := NewEngine(3)
		var live []Event
		for _, op := range ops {
			switch op % 3 {
			case 0:
				live = append(live, e.After(Duration(op)*Microsecond, func() {}))
			case 1:
				if len(live) > 0 {
					e.Cancel(live[int(op)%len(live)])
				}
			case 2:
				e.Step()
			}
		}
		e.RunAll()
		st := e.PoolStats()
		gets := st.Allocs + st.Reuses
		if st.Puts > gets {
			return false
		}
		ok := true
		e.pool.validate(func(string) { ok = false })
		return ok && int(gets-st.Puts) == 0 // everything drained back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
