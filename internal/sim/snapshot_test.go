package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

// snapHarness is a miniature restorable simulation: a counter mutated
// by registered event kinds, some of which draw the engine RNG and
// schedule children. It exists to prove the engine's snapshot contract
// end to end without the kernel on top.
type snapHarness struct {
	eng     *Engine
	counter uint64
	log     []string
}

var (
	kindCount = RegisterEventKind("test.count")
	kindSpawn = RegisterEventKind("test.spawn")
	kindTick  = RegisterEventKind("test.tick")
)

func newSnapHarness(eng *Engine) *snapHarness { return &snapHarness{eng: eng} }

// fire implements every test kind; restore rebuilds callbacks by
// binding the same method to the restored tag.
func (h *snapHarness) fire(tag EventTag) func() {
	return func() {
		switch tag.Kind {
		case kindCount:
			h.counter += tag.A0 + h.eng.RNG().Uint64()%97
			h.log = append(h.log, fmt.Sprintf("count@%d a0=%d c=%d", h.eng.Now(), tag.A0, h.counter))
		case kindSpawn:
			h.log = append(h.log, fmt.Sprintf("spawn@%d budget=%d", h.eng.Now(), tag.A0))
			if tag.A0 > 0 {
				d := Duration(1 + h.eng.RNG().Uint64()%1000)
				h.eng.AfterTagged(d, kindSpawn.Tag(tag.A0-1, uint64(d), 0), h.fire(kindSpawn.Tag(tag.A0-1, uint64(d), 0)))
				h.eng.AfterTagged(d/2, kindCount.Tag(tag.A0, 0, 0), h.fire(kindCount.Tag(tag.A0, 0, 0)))
			}
		case kindTick:
			h.counter++
			h.log = append(h.log, fmt.Sprintf("tick@%d c=%d", h.eng.Now(), h.counter))
			h.eng.AfterPinnedTagged(Duration(tag.A0), tag, h.fire(tag))
		}
	}
}

func (h *snapHarness) schedule(at Time, tag EventTag, pinned bool) {
	if pinned {
		h.eng.SchedulePinnedTagged(at, tag, h.fire(tag))
	} else {
		h.eng.ScheduleTagged(at, tag, h.fire(tag))
	}
}

const harnessSection = "test.harness"

func (h *snapHarness) snapshot() []byte {
	w := snapshot.NewWriter()
	w.Begin(harnessSection)
	w.U64(1, h.counter)
	w.End()
	if err := h.eng.SnapshotTo(w); err != nil {
		panic(err)
	}
	return w.Finish()
}

// restoreHarness rebuilds a harness from img on a fresh engine created
// by mkEngine (which may pre-schedule boot noise that restore must
// drain).
func restoreHarness(t *testing.T, img []byte, mkEngine func() *Engine) *snapHarness {
	t.Helper()
	eng := mkEngine()
	h := newSnapHarness(eng)
	r, err := snapshot.OpenReader(img)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	r.Section(harnessSection)
	h.counter = r.U64(1)
	r.EndSection()
	evs, err := eng.RestoreState(r)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for _, rev := range evs {
		tag := EventTag{Kind: RegisterEventKind(rev.Kind), A0: rev.A0, A1: rev.A1, A2: rev.A2}
		eng.RestoreEvent(rev, h.fire(tag))
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	return h
}

// seedHarness installs a deterministic mixed workload: recurring pinned
// ticks, a spawn cascade, and same-instant unpinned counts.
func seedHarness(h *snapHarness) {
	h.schedule(10, kindTick.Tag(500, 0, 0), true)
	h.schedule(25, kindSpawn.Tag(6, 0, 0), false)
	for i := uint64(0); i < 5; i++ {
		h.schedule(300, kindCount.Tag(i, 0, 0), false) // same-instant ties
	}
	h.schedule(100_000, kindCount.Tag(99, 0, 0), false)
}

func runSnapshotResume(t *testing.T, opts EngineOptions, salt uint64, stopAt Time) {
	t.Helper()
	// Uninterrupted reference run.
	ref := newSnapHarness(NewEngineOpts(1234, opts))
	ref.eng.PerturbTiebreaks(salt)
	seedHarness(ref)
	ref.eng.Run(200_000)

	// Interrupted run: stop at stopAt, snapshot, restore, continue.
	a := newSnapHarness(NewEngineOpts(1234, opts))
	a.eng.PerturbTiebreaks(salt)
	seedHarness(a)
	a.eng.Run(stopAt)
	img := a.snapshot()

	b := restoreHarness(t, img, func() *Engine {
		eng := NewEngineOpts(999, opts) // seed overwritten by restore
		// Boot noise the restore must drain, including a far-future event
		// that drags the ladder window forward so the restored pushes
		// exercise the rewind path.
		eng.ScheduleTagged(3, kindCount.Tag(0, 0, 0), func() {})
		eng.ScheduleTagged(10_000_000, kindCount.Tag(0, 0, 0), func() {})
		return eng
	})
	b.log = append([]string{}, a.log...)
	b.eng.Run(200_000)

	if b.eng.Now() != ref.eng.Now() {
		t.Errorf("final clock: resumed %v, reference %v", b.eng.Now(), ref.eng.Now())
	}
	if b.eng.Fired() != ref.eng.Fired() {
		t.Errorf("fired: resumed %d, reference %d", b.eng.Fired(), ref.eng.Fired())
	}
	if b.counter != ref.counter {
		t.Errorf("counter: resumed %d, reference %d", b.counter, ref.counter)
	}
	if b.eng.RNG().State() != ref.eng.RNG().State() {
		t.Errorf("rng state diverged")
	}
	if !reflect.DeepEqual(b.log, ref.log) {
		t.Errorf("dispatch log diverged:\nresumed  %d entries\nreference %d entries", len(b.log), len(ref.log))
		for i := range ref.log {
			if i >= len(b.log) || b.log[i] != ref.log[i] {
				t.Errorf("first divergence at %d: resumed %q, reference %q", i, at(b.log, i), ref.log[i])
				break
			}
		}
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

func TestSnapshotResume(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts EngineOptions
		salt uint64
	}{
		{"ladder", EngineOptions{Queue: QueueLadder}, 0},
		{"heap", EngineOptions{Queue: QueueHeap}, 0},
		{"sharded", EngineOptions{Queue: QueueSharded, Shards: 4}, 0},
		{"ladder-salted", EngineOptions{Queue: QueueLadder}, 0xfeed},
		{"sharded-salted", EngineOptions{Queue: QueueSharded, Shards: 2}, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, stop := range []Time{0, 26, 300, 1500} {
				runSnapshotResume(t, tc.opts, tc.salt, stop)
			}
		})
	}
}

// TestSnapshotBytesQueueKindInvariant pins the canonical-bytes claim:
// the engine section depends only on simulation state, never on which
// queue implementation holds it.
func TestSnapshotBytesQueueKindInvariant(t *testing.T) {
	build := func(opts EngineOptions) []byte {
		h := newSnapHarness(NewEngineOpts(42, opts))
		seedHarness(h)
		h.eng.Run(400)
		return h.snapshot()
	}
	ladder := build(EngineOptions{Queue: QueueLadder})
	for _, opts := range []EngineOptions{
		{Queue: QueueHeap},
		{Queue: QueueSharded, Shards: 2},
		{Queue: QueueSharded, Shards: 8},
		{Queue: QueueLadder, NoPool: true},
	} {
		if got := build(opts); !reflect.DeepEqual(got, ladder) {
			t.Errorf("snapshot bytes differ for %+v (hash %016x vs ladder %016x)",
				opts, snapshot.Hash(got), snapshot.Hash(ladder))
		}
	}
}

func TestSnapshotUntaggedEventErrors(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(10, func() {})
	w := snapshot.NewWriter()
	if err := eng.SnapshotTo(w); err == nil {
		t.Fatalf("snapshot of untagged event succeeded")
	}
}

// TestSnapshotSkipsCancelled: lazily-cancelled nodes must not appear in
// the image (they have no observable future), and snapshots taken
// before/after draining them are byte-identical.
func TestSnapshotSkipsCancelled(t *testing.T) {
	h := newSnapHarness(NewEngine(7))
	tag := kindCount.Tag(1, 0, 0)
	keep := h.eng.ScheduleTagged(50, tag, h.fire(tag))
	drop := h.eng.Schedule(20, func() {}) // untagged, but cancelled: must not error either
	h.eng.Cancel(drop)
	_ = keep
	img := h.snapshot()
	b := restoreHarness(t, img, func() *Engine { return NewEngine(0) })
	if got := b.eng.Pending(); got != 1 {
		t.Fatalf("restored %d pending events, want 1", got)
	}
	b.eng.RunAll()
	if len(b.log) != 1 {
		t.Fatalf("restored run dispatched %d events, want 1", len(b.log))
	}
}

// TestRestoreLadderOverflowRewind drives the two hardest ladder restore
// paths at once: the snapshot carries far-future events (they land in
// the overflow heap) and the restoring engine's drained boot noise has
// already slid the ladder window past the checkpoint clock, so the
// restored near-future pushes must rewind the window.
func TestRestoreLadderOverflowRewind(t *testing.T) {
	h := newSnapHarness(NewEngine(3))
	// Near-future cluster plus deep far-future events (>> one ladder
	// window of 256 * 65536ns).
	for i := uint64(0); i < 8; i++ {
		h.schedule(Time(1000+i*10), kindCount.Tag(i, 0, 0), false)
	}
	h.schedule(40_000_000, kindCount.Tag(100, 0, 0), false) // overflow heap
	h.schedule(90_000_000, kindTick.Tag(1000, 0, 0), true)  // overflow heap, pinned
	h.eng.Run(500)                                          // fires nothing; clock at 500
	img := h.snapshot()

	ref := restoreHarness(t, img, func() *Engine { return NewEngine(0) })
	ref.eng.Run(100_000_000)

	rewound := restoreHarness(t, img, func() *Engine {
		eng := NewEngine(0)
		// Boot event far past every checkpoint event: draining it forces
		// the ladder window deep into the future, so every restored push
		// lands before the window start.
		eng.Schedule(500_000_000, func() {})
		return eng
	})
	rewound.eng.Run(100_000_000)

	if !reflect.DeepEqual(ref.log, rewound.log) {
		t.Fatalf("rewind-path restore diverged:\nref    %v\nrewound %v", ref.log, rewound.log)
	}
	if len(ref.log) < 10 {
		t.Fatalf("fixture too small: %d dispatches", len(ref.log))
	}
}

// TestRestoreWarmSaltOverride proves the warm-start identity at the
// engine level: restoring a checkpoint and then installing a different
// tie-break salt dispatches the same-instant unpinned ties exactly as a
// cold run under that salt would.
func TestRestoreWarmSaltOverride(t *testing.T) {
	const salt = 0xabcdef
	seed := func(h *snapHarness) {
		for i := uint64(0); i < 6; i++ {
			h.schedule(777, kindCount.Tag(i, 0, 0), false)
		}
		h.schedule(777, kindTick.Tag(100_000, 0, 0), true)
	}

	cold := newSnapHarness(NewEngine(11))
	cold.eng.PerturbTiebreaks(salt)
	seed(cold)
	cold.eng.Run(800)

	base := newSnapHarness(NewEngine(11)) // salt 0
	seed(base)
	img := base.snapshot()

	// Restore by hand so the salt can be swapped in the legal window:
	// after RestoreState (queue empty) and before the first RestoreEvent.
	warm := newSnapHarness(NewEngine(0))
	r, err := snapshot.OpenReader(img)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	r.Section(harnessSection)
	warm.counter = r.U64(1)
	r.EndSection()
	evs, err := warm.eng.RestoreState(r)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	warm.eng.PerturbTiebreaks(salt)
	for _, rev := range evs {
		tag := EventTag{Kind: RegisterEventKind(rev.Kind), A0: rev.A0, A1: rev.A1, A2: rev.A2}
		warm.eng.RestoreEvent(rev, warm.fire(tag))
	}
	warm.eng.Run(800)

	if !reflect.DeepEqual(warm.log, cold.log) {
		t.Fatalf("warm start under salt %#x diverged from cold run:\ncold %v\nwarm %v", salt, cold.log, warm.log)
	}
	if warm.counter != cold.counter {
		t.Fatalf("warm counter %d, cold %d", warm.counter, cold.counter)
	}
}

// TestRestoreEventValidation: the restore push rejects impossible
// occurrences loudly instead of corrupting the order.
func TestRestoreEventValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	h := newSnapHarness(NewEngine(5))
	h.schedule(100, kindCount.Tag(0, 0, 0), false)
	img := h.snapshot()
	b := restoreHarness(t, img, func() *Engine { return NewEngine(0) })
	mustPanic("seq >= nextSeq", func() {
		b.eng.RestoreEvent(RestoredEvent{At: 200, Seq: 1 << 40, Kind: "test.count"}, func() {})
	})
	mustPanic("at < now", func() {
		b.eng.Run(150)
		b.eng.RestoreEvent(RestoredEvent{At: 10, Seq: 0, Kind: "test.count"}, func() {})
	})
}

// TestRestoredHandleLifecycle: handles returned by RestoreEvent are
// first-class — Cancel and Reschedule keep their contracts (and
// Reschedule preserves the tag, so a moved event still snapshots).
func TestRestoredHandleLifecycle(t *testing.T) {
	h := newSnapHarness(NewEngine(5))
	h.schedule(100, kindCount.Tag(0, 0, 0), false)
	h.schedule(120, kindCount.Tag(1, 0, 0), false)
	img := h.snapshot()

	eng := NewEngine(0)
	h2 := newSnapHarness(eng)
	r, err := snapshot.OpenReader(img)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	r.Section(harnessSection)
	h2.counter = r.U64(1)
	r.EndSection()
	evs, err := eng.RestoreState(r)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	var handles []Event
	for _, rev := range evs {
		tag := EventTag{Kind: RegisterEventKind(rev.Kind), A0: rev.A0, A1: rev.A1, A2: rev.A2}
		handles = append(handles, eng.RestoreEvent(rev, h2.fire(tag)))
	}
	eng.Cancel(handles[0])
	moved := eng.Reschedule(handles[1], 500)
	if !moved.Pending() {
		t.Fatalf("rescheduled restored event not pending")
	}
	// The moved event kept its tag: snapshotting again must succeed.
	w := snapshot.NewWriter()
	if err := eng.SnapshotTo(w); err != nil {
		t.Fatalf("snapshot after reschedule: %v", err)
	}
	eng.RunAll()
	if len(h2.log) != 1 {
		t.Fatalf("dispatched %d events, want 1 (one cancelled)", len(h2.log))
	}
}

// FuzzSnapshotResume is the differential harness of the resume
// contract, in the style of FuzzDiffQueue: a fuzzed op stream seeds a
// restorable workload, one engine runs it uninterrupted, a second is
// snapshotted at a fuzzed point, restored into a third (possibly on a
// different queue implementation), and the two futures must be
// identical — dispatch log, clock, fired count, counter and RNG stream.
func FuzzSnapshotResume(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 4, 5, 6}, uint8(2), uint8(0), uint8(1))
	f.Add(uint64(42), []byte{0xff, 0x01, 0x80, 0x7f, 0x33, 0x9a, 0x00, 0x10}, uint8(7), uint8(1), uint8(2))
	f.Add(uint64(0xdead), []byte{9, 9, 9, 9}, uint8(0), uint8(2), uint8(0))
	f.Add(uint64(7), []byte{5, 0, 5, 0, 5, 0, 200, 200, 200}, uint8(31), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte, stopByte, qa, qb uint8) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		kinds := []QueueKind{QueueLadder, QueueHeap, QueueSharded}
		optsA := EngineOptions{Queue: kinds[int(qa)%len(kinds)], Shards: 3}
		optsB := EngineOptions{Queue: kinds[int(qb)%len(kinds)], Shards: 2}
		salt := seed % 3 // exercise salted and unsalted orders

		seedOps := func(h *snapHarness) {
			for i, b := range ops {
				at := Time(uint64(b) * 17)
				switch b % 3 {
				case 0:
					h.schedule(at, kindCount.Tag(uint64(i), 0, 0), false)
				case 1:
					h.schedule(at, kindSpawn.Tag(uint64(b%5), 0, 0), false)
				case 2:
					h.schedule(at, kindTick.Tag(uint64(b)*13+1, 0, 0), true)
				}
			}
		}
		const horizon = 50_000

		ref := newSnapHarness(NewEngineOpts(seed, optsA))
		ref.eng.PerturbTiebreaks(salt)
		seedOps(ref)
		ref.eng.Run(horizon)

		a := newSnapHarness(NewEngineOpts(seed, optsA))
		a.eng.PerturbTiebreaks(salt)
		seedOps(a)
		a.eng.Run(Time(stopByte) * 100)
		img := a.snapshot()

		b := restoreHarness(t, img, func() *Engine {
			eng := NewEngineOpts(seed^0x55, optsB)
			eng.Schedule(1, func() {})
			eng.Schedule(10_000_000, func() {})
			return eng
		})
		b.log = append([]string{}, a.log...)
		b.eng.Run(horizon)

		if b.eng.Now() != ref.eng.Now() || b.eng.Fired() != ref.eng.Fired() ||
			b.counter != ref.counter || b.eng.RNG().State() != ref.eng.RNG().State() {
			t.Fatalf("resume state diverged: now %v/%v fired %d/%d counter %d/%d",
				b.eng.Now(), ref.eng.Now(), b.eng.Fired(), ref.eng.Fired(), b.counter, ref.counter)
		}
		if !reflect.DeepEqual(b.log, ref.log) {
			for i := range ref.log {
				if i >= len(b.log) || b.log[i] != ref.log[i] {
					t.Fatalf("dispatch log diverged at %d: resumed %q, reference %q", i, at(b.log, i), ref.log[i])
				}
			}
			t.Fatalf("dispatch log diverged in length: %d vs %d", len(b.log), len(ref.log))
		}
	})
}
