package sim

import "fmt"

// shardedQueue partitions the pending set across per-shard ladder
// queues — one per simulated CPU or CPU group, selected by the node's
// placement hint (Engine.SetShardHint) — and merges the shard heads at
// dispatch time under the full eventOrder.
//
// The merge is the whole correctness story: every pop takes the global
// eventOrder minimum over all shard heads, so the pop sequence is
// bit-identical to the single ladder and the reference heap for every
// shard count and every placement of events — placement routes storage,
// never order. The differential harness (FuzzShardedSchedule) and the
// figure-level A/B (internal/core shardab_test.go) hold it to that.
//
// What sharding buys: each shard is a private ladder whose window
// slides at its own CPU's event density, so a busy housekeeping CPU's
// timer clusters never share buckets with a shielded CPU's sparse
// deadline stream — bucket sorts stay small and per-shard. It is also
// the structural basis for windowed parallel execution (ShardSet):
// within a conservative lookahead window the per-shard sub-queues are
// causally independent and can be drained concurrently.
//
// The merge scan is O(shards) per peek/pop with a cached minimum-shard
// index, and shard counts are small (one per simulated CPU group), so
// the constant is a handful of pointer compares. The hot path stays
// allocation-free: shards are ladder queues and the scan uses no
// scratch storage.
type shardedQueue struct {
	ord    eventOrder
	shards []*ladderQueue
	// lookahead is the model's guaranteed minimum cross-shard event
	// latency (kernel.Config.Lookahead). The merge needs none of it —
	// it realises exact global order — but the simsan build uses it to
	// check the conservative-parallel causality contract on every pop:
	// no shard head may be overtaken by more than the lookahead. A
	// violation means a cross-shard event was scheduled closer than the
	// config's minimum IPI/wakeup latency, i.e. the window logic built
	// on this queue would not be safe to parallelise.
	lookahead Duration
	size      int
	// minShard caches which shard holds the global minimum; -1 means
	// stale (recompute on next peek/pop). Valid only between a peek and
	// the operation that consumes or invalidates it.
	minShard int
}

func newShardedQueue(shards int, lookahead Duration) *shardedQueue {
	if shards < 1 {
		panic(fmt.Sprintf("sim: sharded queue needs >= 1 shard, got %d", shards))
	}
	q := &shardedQueue{
		shards:    make([]*ladderQueue, shards),
		lookahead: lookahead,
		minShard:  -1,
	}
	for i := range q.shards {
		q.shards[i] = newLadderQueue()
	}
	return q
}

// shardOf maps a placement hint onto a shard index. Hints are arbitrary
// ints (CPU IDs, entity IDs, negative sentinels); the Euclidean modulo
// keeps every hint valid rather than forcing callers to know the count.
func (q *shardedQueue) shardOf(hint int32) int {
	idx := int(hint) % len(q.shards)
	if idx < 0 {
		idx += len(q.shards)
	}
	return idx
}

// push routes n to its hint's sub-queue.
//
//simlint:hotpath
func (q *shardedQueue) push(n *eventNode) {
	q.shards[q.shardOf(n.shard)].push(n)
	q.size++
	q.minShard = -1
}

// scanMin recomputes the minimum-holding shard index, or -1 when empty.
// ord.less is a strict total order (seq is unique per engine), so the
// scan has exactly one answer regardless of shard visit order.
func (q *shardedQueue) scanMin() int {
	min := -1
	var head *eventNode
	for i, s := range q.shards {
		h := s.peek()
		if h == nil {
			continue
		}
		if head == nil || q.ord.less(h, head) {
			min, head = i, h
		}
	}
	return min
}

// peek surfaces the global minimum across shard heads.
//
//simlint:hotpath
func (q *shardedQueue) peek() *eventNode {
	if q.minShard < 0 {
		q.minShard = q.scanMin()
	}
	if q.minShard < 0 {
		return nil
	}
	return q.shards[q.minShard].peek()
}

// pop removes the global minimum.
//
//simlint:hotpath
func (q *shardedQueue) pop() *eventNode {
	if q.minShard < 0 {
		q.minShard = q.scanMin()
	}
	if q.minShard < 0 {
		return nil
	}
	n := q.shards[q.minShard].pop()
	q.size--
	q.minShard = -1
	if SanitizerEnabled() {
		q.sanCheckCausality(n)
	}
	return n
}

// sanCheckCausality enforces the conservative-parallel contract behind
// the sharded engine under -tags simsan: when the model declares a
// minimum cross-shard latency (lookahead > 0), no shard may hold a
// pending event more than that latency behind an event another shard
// just dispatched. Equivalently, the global minimum never trails the
// popped event by more than the lookahead — which is exactly the
// precondition that makes a lookahead window of independent per-shard
// execution safe.
func (q *shardedQueue) sanCheckCausality(popped *eventNode) {
	if q.lookahead <= 0 || popped == nil {
		return
	}
	for i, s := range q.shards {
		h := s.peek()
		if h != nil && h.state == nodePending && popped.At > h.At.Add(q.lookahead) {
			panic(fmt.Sprintf(
				"simsan: cross-shard causality violation: popped event at %v is past shard %d's committed horizon (head %v + lookahead %v)",
				popped.At, i, h.At, q.lookahead))
		}
	}
}

func (q *shardedQueue) len() int { return q.size }

func (q *shardedQueue) setSalt(salt uint64) {
	q.ord.salt = salt
	for _, s := range q.shards {
		s.setSalt(salt)
	}
	q.minShard = -1
}

func (q *shardedQueue) each(fn func(*eventNode)) {
	for _, s := range q.shards {
		s.each(fn)
	}
}

func (q *shardedQueue) validate(fail func(string)) {
	total := 0
	for i, s := range q.shards {
		s.validate(func(msg string) { fail(fmt.Sprintf("shard %d: %s", i, msg)) })
		total += s.len()
	}
	if total != q.size {
		fail(fmt.Sprintf("sharded: size %d != sum of shard sizes %d", q.size, total))
		return
	}
	if q.minShard >= 0 {
		if q.minShard >= len(q.shards) {
			fail(fmt.Sprintf("sharded: cached min shard %d out of range (%d shards)", q.minShard, len(q.shards)))
			return
		}
		cached := q.shards[q.minShard].peek()
		if cached == nil {
			fail(fmt.Sprintf("sharded: cached min shard %d is empty", q.minShard))
			return
		}
		for i, s := range q.shards {
			if h := s.peek(); h != nil && q.ord.less(h, cached) {
				fail(fmt.Sprintf("sharded: cached min shard %d (head at %v) beaten by shard %d (head at %v)",
					q.minShard, cached.At, i, h.At))
				return
			}
		}
	}
}
