package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d for identical seeds", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently-seeded streams", same)
	}
}

func TestForkIndependence(t *testing.T) {
	// Consuming from a fork must not perturb the parent's future stream
	// relative to a parent that forked but never used the child.
	p1 := NewRNG(99)
	_ = p1.Fork()
	wantNext := p1.Uint64()

	p2 := NewRNG(99)
	c := p2.Fork()
	for i := 0; i < 100; i++ {
		c.Uint64()
	}
	if got := p2.Uint64(); got != wantNext {
		t.Fatal("using a forked child perturbed the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(7)
	var sum Duration
	n := 100000
	mean := 100 * Microsecond
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / float64(n)
	if math.Abs(got-float64(mean)) > 0.03*float64(mean) {
		t.Fatalf("Exp mean = %v, want ~%v", Duration(got), mean)
	}
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(8)
	lo, hi := 10*Microsecond, 20*Microsecond
	sawLo, sawHi := false, false
	for i := 0; i < 100000; i++ {
		v := r.Uniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Uniform(%v,%v) = %v out of range", lo, hi, v)
		}
		if v < lo+Microsecond {
			sawLo = true
		}
		if v > hi-Microsecond {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("Uniform never approached its bounds")
	}
	if r.Uniform(hi, lo) != hi {
		t.Fatal("Uniform with hi<=lo should return lo")
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(9)
	xm, max := 50*Microsecond, 90*Millisecond
	var worst Duration
	for i := 0; i < 200000; i++ {
		v := r.Pareto(xm, 1.1, max)
		if v < xm || v > max {
			t.Fatalf("Pareto = %v out of [%v,%v]", v, xm, max)
		}
		if v > worst {
			worst = v
		}
	}
	// A heavy tail with alpha=1.1 over 200k draws should reach well past
	// 100x the minimum.
	if worst < 100*xm {
		t.Fatalf("Pareto worst = %v, tail looks too light", worst)
	}
}

func TestLogNormalMeanP99(t *testing.T) {
	r := NewRNG(10)
	median, p99 := 200*Microsecond, 5*Millisecond
	n := 200000
	var above99 int
	var aboveMedian int
	for i := 0; i < n; i++ {
		v := r.LogNormalMeanP99(median, p99)
		if v > p99 {
			above99++
		}
		if v > median {
			aboveMedian++
		}
	}
	gotP99 := float64(above99) / float64(n)
	if gotP99 < 0.003 || gotP99 > 0.03 {
		t.Fatalf("fraction above p99 = %v, want ~0.01", gotP99)
	}
	gotMed := float64(aboveMedian) / float64(n)
	if gotMed < 0.48 || gotMed > 0.52 {
		t.Fatalf("fraction above median = %v, want ~0.5", gotMed)
	}
	if got := r.LogNormalMeanP99(0, p99); got != 0 {
		t.Fatalf("LogNormalMeanP99(0, p99) = %v, want 0", got)
	}
	if got := r.LogNormalMeanP99(median, median); got != median {
		t.Fatal("degenerate p99<=median should return median")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestJitter(t *testing.T) {
	r := NewRNG(12)
	d := 100 * Microsecond
	for i := 0; i < 10000; i++ {
		v := r.Jitter(d, 0.1)
		if v < d.Scale(0.9)-1 || v > d.Scale(1.1)+1 {
			t.Fatalf("Jitter out of ±10%%: %v", v)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("Jitter with f=0 should be identity")
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", got)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// Property: Uniform always respects its bounds for arbitrary lo/hi.
func TestQuickUniformInRange(t *testing.T) {
	r := NewRNG(21)
	f := func(a, b uint32) bool {
		lo, hi := Duration(a), Duration(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Uniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale is monotone in the factor and never returns negative.
func TestQuickScaleMonotone(t *testing.T) {
	f := func(d uint32, f1, f2 float64) bool {
		f1, f2 = math.Abs(f1), math.Abs(f2)
		if math.IsNaN(f1) || math.IsNaN(f2) || math.IsInf(f1, 0) || math.IsInf(f2, 0) {
			return true
		}
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		if f2 > 1e6 {
			return true // avoid overflow territory; model never scales that far
		}
		dd := Duration(d)
		a, b := dd.Scale(f1), dd.Scale(f2)
		return a >= 0 && a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
