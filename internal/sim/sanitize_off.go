//go:build !simsan

package sim

// sanState is the no-op sanitizer used by default builds. It carries no
// state and its hooks have empty bodies, so they inline to nothing: the
// untagged engine pays zero time and zero bytes for the sanitizer
// (bench_test.go's engine hot-path benchmark guards that).
type sanState struct{}

func (e *Engine) sanOnSchedule(n *eventNode) {}

func (e *Engine) sanOnCancel(n *eventNode) {}

func (e *Engine) sanOnAdvance(at Time) {}

func (e *Engine) sanOnPop(n *eventNode) {}

func (e *Engine) sanOnRestore() {}

// SanitizerEnabled reports whether this binary was built with the
// simsan shadow checker (-tags simsan).
func SanitizerEnabled() bool { return false }
