package sim

import "math"

// RNG is a deterministic pseudo-random source (splitmix64) with the
// distribution helpers the kernel model needs. It deliberately does not use
// math/rand so the stream is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator. Subsystems each get their
// own fork so that adding events to one subsystem does not perturb the
// random stream seen by another.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// State returns the generator's internal state, for snapshots. The
// state fully determines the remaining stream: SetState(State()) on any
// RNG makes it produce the identical continuation.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state, for restore.
func (r *RNG) SetState(s uint64) { r.state = s }

// DeriveSeed derives the seed for sub-stream idx of a run with the given
// base seed: the splitmix64 output function applied to the idx-th state
// after base. Replications, experiments and shards must use this instead
// of additive offsets (seed + i*K), whose streams collide for nearby base
// seeds — e.g. seed+2K for base s equals seed+K for base s+K.
func DeriveSeed(base, idx uint64) uint64 {
	z := base + (idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Uniform returns a uniform Duration in [lo, hi].
func (r *RNG) Uniform(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// Exp returns an exponentially distributed Duration with the given mean.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Duration(-float64(mean) * math.Log(1-u))
}

// Normal returns a normally distributed float64 (Box–Muller).
func (r *RNG) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns a log-normally distributed Duration whose underlying
// normal has the given mu and sigma (of the log, in ln-nanoseconds).
func (r *RNG) LogNormal(mu, sigma float64) Duration {
	return Duration(math.Exp(r.Normal(mu, sigma)))
}

// LogNormalMeanP99 returns a log-normal Duration parameterised by its
// median and its ~p99 value, which is how the kernel model's critical
// section profiles are most naturally written down.
func (r *RNG) LogNormalMeanP99(median, p99 Duration) Duration {
	if median <= 0 {
		return 0
	}
	if p99 <= median {
		return median
	}
	// For LogNormal(mu, sigma): median = e^mu, p99 = e^(mu + 2.326*sigma).
	mu := math.Log(float64(median))
	sigma := (math.Log(float64(p99)) - mu) / 2.326
	return r.LogNormal(mu, sigma)
}

// Pareto returns a bounded Pareto-distributed Duration with minimum xm,
// shape alpha, truncated at max. Heavy-tailed kernel residency times and
// softirq bursts use this.
func (r *RNG) Pareto(xm Duration, alpha float64, max Duration) Duration {
	if xm <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := Duration(float64(xm) / math.Pow(1-u, 1/alpha))
	if max > 0 && v > max {
		v = max
	}
	return v
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *RNG) Jitter(d Duration, f float64) Duration {
	if d <= 0 || f <= 0 {
		return d
	}
	scale := 1 - f + 2*f*r.Float64()
	return d.Scale(scale)
}
