package sim

import "fmt"

// EventPool is a free list of eventNodes. The engine's hot path
// (schedule → fire) would otherwise allocate one node per event; with a
// pool, steady-state simulation runs at zero allocations per event
// because every fired or cancelled node is recycled.
//
// A pool is single-goroutine state, exactly like the Engine that uses
// it. The parallel replication runner gives each worker its own pool
// (runner.MapSeededPooled) so replications on the same worker share
// warm nodes while workers never share anything — the same ownership
// discipline the runner already applies to engines and RNGs.
//
// Recycling is only safe because it is *checked*: every put bumps the
// node's generation so outstanding Event handles go stale, and the pool
// panics loudly (all messages contain "generation mismatch") on any
// double-free or free of a node the pool does not own. Determinism is
// unaffected by pooling: node identity and generation numbers are never
// part of the dispatch order (see eventOrder), so pooled and fresh
// allocations produce bit-identical results — a property the workers=1
// vs workers=N golden tests exercise directly.
type EventPool struct {
	free []*eventNode
	// disabled makes put recycle nothing (nodes still have their
	// generation bumped, so handle staleness checks behave identically)
	// and get always allocate. This is the alloc-per-event reference
	// mode used by the pooled-vs-alloc benchmarks.
	disabled bool

	allocs uint64 // nodes created fresh
	reuses uint64 // nodes served from the free list
	puts   uint64 // nodes returned
}

// NewEventPool returns an empty pool.
func NewEventPool() *EventPool { return &EventPool{} }

// newAllocPool returns a pool in reference (no-recycle) mode.
func newAllocPool() *EventPool { return &EventPool{disabled: true} }

// PoolStats is a snapshot of pool traffic, exposed for benchmarks and
// tests. Reuses/(Allocs+Reuses) is the hit rate.
type PoolStats struct {
	Allocs uint64 `json:"allocs"`
	Reuses uint64 `json:"reuses"`
	Puts   uint64 `json:"puts"`
	Free   int    `json:"free"`
}

// Stats returns a snapshot of pool counters.
func (p *EventPool) Stats() PoolStats {
	return PoolStats{Allocs: p.allocs, Reuses: p.reuses, Puts: p.puts, Free: len(p.free)}
}

// get hands out a node in nodePending state. Free-list nodes are
// verified to actually be free: a non-free node on the list means some
// caller kept using a node after putting it, and continuing would
// silently hand two owners the same storage.
//
//simlint:hotpath
func (p *EventPool) get() *eventNode {
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if nd.state != nodeFree {
			panic(fmt.Sprintf(
				"sim: event pool generation mismatch: free-list node (gen %d) is %s, not free — node mutated after release",
				nd.gen, nd.state))
		}
		nd.state = nodePending
		p.reuses++
		return nd
	}
	p.allocs++
	//simlint:allow hotalloc pool miss is the cold path; steady state recycles via the free list
	return &eventNode{state: nodePending}
}

// put returns a node to the pool. The node must be in nodePending or
// nodeCancelled state (i.e. currently owned by an engine); putting a
// free node is a double-free and panics. The generation bump is what
// invalidates every outstanding handle to this occurrence.
//
//simlint:hotpath
func (p *EventPool) put(nd *eventNode) {
	if nd.state == nodeFree {
		panic(fmt.Sprintf(
			"sim: event pool generation mismatch: double free of event node (gen %d, seq %d)",
			nd.gen, nd.seq))
	}
	nd.gen++
	nd.fn = nil
	nd.state = nodeFree
	nd.pinned = false
	nd.shard = 0
	nd.tag = EventTag{}
	p.puts++
	if !p.disabled {
		//simlint:allow hotalloc free-list growth is amortized; put reuses capacity at steady state
		p.free = append(p.free, nd)
	}
}

// validate checks pool invariants; fail is called with a description of
// the first violation. Used by the simsan periodic check.
func (p *EventPool) validate(fail func(string)) {
	for i, nd := range p.free {
		if nd == nil {
			fail(fmt.Sprintf("event pool: nil node at free[%d]", i))
			return
		}
		if nd.state != nodeFree {
			fail(fmt.Sprintf("event pool: free[%d] (gen %d) has state %s, want free", i, nd.gen, nd.state))
			return
		}
		if nd.fn != nil {
			fail(fmt.Sprintf("event pool: free[%d] (gen %d) retains a callback", i, nd.gen))
			return
		}
	}
}
