// Package sim provides a deterministic discrete-event simulation engine:
// virtual time in integer nanoseconds, an event heap with stable ordering,
// and a seeded pseudo-random number generator with the distributions the
// kernel model needs. Every run with the same seed is bit-reproducible.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct
// from time.Duration so that simulated time can never be accidentally mixed
// with wall-clock time.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// NoTime is the sentinel Event.When returns for a handle with no
// pending occurrence. It precedes every valid instant.
const NoTime Time = -1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros reports t in fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis reports t in fractional milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds reports t in fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports d in fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis reports d in fractional milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds reports d in fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// String formats a duration with an adaptive unit, e.g. "13.2µs", "92.3ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// String formats a time point the same way as the equivalent duration.
func (t Time) String() string { return Duration(t).String() }

// Scale multiplies d by factor f, rounding to the nearest nanosecond.
// It is the one sanctioned way to apply slowdown/speedup factors so that
// rounding behaviour is consistent everywhere.
func (d Duration) Scale(f float64) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(float64(d)*f + 0.5)
}

// DurationOf converts fractional seconds to a Duration.
func DurationOf(seconds float64) Duration {
	return Duration(seconds*1e9 + 0.5)
}
