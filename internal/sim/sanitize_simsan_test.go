//go:build simsan

package sim

import (
	"strings"
	"testing"
)

func mustPanicWith(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a simsan panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want message containing %q", r, substr)
		}
	}()
	fn()
}

func TestSimsanEnabled(t *testing.T) {
	if !SanitizerEnabled() {
		t.Fatal("SanitizerEnabled() = false under -tags simsan")
	}
}

// A clean run — ties, cancellations, reschedules, pinned and unpinned,
// with and without a perturbation salt — must not trip the shadow
// checker. Crosses the periodic full-heap validation threshold so that
// path runs too.
func TestSimsanCleanRun(t *testing.T) {
	for _, salt := range []uint64{0, 3} {
		e := NewEngine(9)
		e.PerturbTiebreaks(salt)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 3*sanValidateEvery {
				e.AfterPinned(Duration(n%4)*Microsecond, tick)
				e.After(0, func() {}) // same-instant unpinned tie
				if n%7 == 0 {
					ev := e.After(5*Microsecond, func() {})
					e.Reschedule(ev, e.Now().Add(Microsecond))
				}
				if n%11 == 0 {
					e.Cancel(e.After(2*Microsecond, func() {}))
				}
			}
		}
		e.AfterPinned(0, tick)
		e.RunAll()
		if e.san.pops < sanValidateEvery {
			t.Fatalf("salt %d: only %d pops; periodic heap validation never ran", salt, e.san.pops)
		}
	}
}

func TestSimsanCatchesClockRegression(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	// Corrupt the virtual clock past the queued event; dispatching it
	// would make time run backwards, which the pop check must catch.
	e.now = 10
	mustPanicWith(t, "virtual clock would regress", func() { e.Step() })
}

func TestSimsanCatchesPopOrderViolation(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	// Forge shadow state claiming something at t=10 already popped; the
	// queued t=5 event now violates global pop ordering.
	e.san.popped = true
	e.san.lastAt = 10
	e.san.lastKey = 0
	mustPanicWith(t, "pop order violation", func() { e.Step() })
}

// A cancelled node drains when it surfaces as the queue minimum, which
// can be far ahead of the clock; an event scheduled after that drain
// may legitimately pop behind the drained node's At. The sanitizer must
// not misreport that as a pop-order violation.
func TestSimsanAllowsPopBehindDrainedCancel(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(Time(684*Microsecond), func() {})
	e.Cancel(ev)
	if e.Step() {
		t.Fatal("Step dispatched something; only a cancelled node was queued")
	}
	fired := false
	e.Schedule(Time(585*Microsecond), func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("event scheduled behind a drained cancel never fired")
	}
}

func TestSimsanCatchesLadderRunDisorder(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 8; i++ {
		e.Schedule(Time(i), func() {})
	}
	lq := e.q.(*ladderQueue)
	lq.peek() // force a refill so the sorted run is populated
	lq.run[0], lq.run[1] = lq.run[1], lq.run[0]
	mustPanicWith(t, "not strictly sorted", func() { e.sanValidate() })
}

func TestSimsanCatchesLadderSizeDesync(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 8; i++ {
		e.Schedule(Time(i)*Time(Millisecond), func() {})
	}
	e.q.(*ladderQueue).size++
	mustPanicWith(t, "!= counted", func() { e.sanValidate() })
}

func TestSimsanCatchesHeapPropertyViolation(t *testing.T) {
	e := NewEngineOpts(1, EngineOptions{Queue: QueueHeap})
	for i := 0; i < 8; i++ {
		e.Schedule(Time(i), func() {})
	}
	// Swap the root with a leaf so the only defect is the ordering
	// invariant itself.
	h := e.q.(*refHeap)
	h.items[0], h.items[7] = h.items[7], h.items[0]
	mustPanicWith(t, "heap property violated", func() { e.sanValidate() })
}

func TestSimsanCatchesPoolCorruption(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	e.RunAll() // the fired node is now on the free list
	if len(e.pool.free) == 0 {
		t.Fatal("expected a recycled node on the free list")
	}
	e.pool.free[0].state = nodePending
	mustPanicWith(t, "event pool", func() { e.sanValidate() })
}

func TestSimsanCatchesLiveCountDesync(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.live++
	mustPanicWith(t, "live count", func() { e.sanValidate() })
}

// Same-instant rescheduling under a salt may legally produce a key
// below the one just popped; sanOnSchedule lowers the floor so this is
// not misreported. Exercise that path explicitly: a callback schedules
// a burst of same-instant events under a salt chosen above so that at
// least one lands below the popped key.
func TestSimsanNoFalsePositiveOnSameInstantSchedule(t *testing.T) {
	for salt := uint64(1); salt <= 16; salt++ {
		e := NewEngine(1)
		e.PerturbTiebreaks(salt)
		fired := 0
		e.Schedule(5, func() {
			for i := 0; i < 32; i++ {
				e.Schedule(5, func() { fired++ })
			}
		})
		e.RunAll() // must not panic
		if fired != 32 {
			t.Fatalf("salt %d: fired %d same-instant events, want 32", salt, fired)
		}
	}
}
