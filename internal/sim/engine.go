package sim

import "fmt"

// Engine runs a discrete-event simulation. It is not safe for concurrent
// use: the whole simulation is single-threaded and deterministic by design
// (real SMP hardware is modelled, not exploited).
//
// The hot path is allocation-free: event storage comes from a free-list
// pool (EventPool) and the default queue is a two-level ladder
// (ladderQueue) with O(1) amortised push/pop. Both are invisible in
// results — the dispatch order is the eventOrder total order regardless
// of queue implementation or node recycling, and the reference heap
// (QueueHeap) stays selectable to prove it.
type Engine struct {
	now Time
	// q holds pending (and lazily-cancelled) events; kind records which
	// implementation was chosen.
	q    eventQueue
	kind QueueKind
	// pool recycles event nodes; possibly shared with other engines on
	// the same goroutine (see runner.MapSeededPooled).
	pool *EventPool
	// ord is the dispatch total order, duplicated from the queue so the
	// sanitizer can compute tie-break keys.
	ord     eventOrder
	nextSeq uint64
	// live counts queued events that are still pending (not cancelled).
	live int
	rng  *RNG
	// Stopped is set by Stop and checked by Run.
	stopped bool
	// fired counts events dispatched, for diagnostics and budget checks.
	fired uint64
	// san is the build-tag-gated sanitizer state: a zero-size no-op
	// under the default build, shadow-check state under -tags simsan.
	san sanState
	// shardHint is the placement hint captured into every scheduled
	// node (eventNode.shard). It is sticky: SetShardHint installs it,
	// and dispatching an event re-installs that event's own hint so
	// children inherit their parent's shard. Placement only routes
	// nodes between the sharded queue's sub-queues — it is never part
	// of eventOrder, so it cannot change results on any queue kind.
	shardHint int32
}

// EngineOptions selects non-default engine internals. The zero value is
// the production configuration: ladder queue, private event pool.
type EngineOptions struct {
	// Queue picks the event-queue implementation; "" means QueueLadder.
	Queue QueueKind
	// Pool, when non-nil, is used instead of a fresh private pool.
	// Sharing a pool across engines is safe only when the engines run
	// on the same goroutine (the replication runner owns one pool per
	// worker); pooling never affects results.
	Pool *EventPool
	// NoPool disables node recycling (every event allocates): the
	// reference mode for the pooled-vs-alloc benchmarks. Ignored when
	// Pool is set.
	NoPool bool
	// Shards is the sub-queue count when Queue is QueueSharded (0 means
	// the package default, SetDefaultShardCount). Ignored by the other
	// queue kinds. Negative values panic.
	Shards int
	// ShardLookahead is the minimum cross-shard event latency the model
	// guarantees (kernel.Config.Lookahead derives it from the machine's
	// IPI/wakeup/tick costs). The sharded queue's dispatch needs no
	// lookahead to be correct — it merges shard heads under the full
	// eventOrder — but the simsan shadow sanitizer uses it for the
	// cross-shard causality check: no shard may pop an event further
	// than the lookahead past another shard's earliest pending event.
	ShardLookahead Duration
}

// NewEngine returns an engine at time 0 with an RNG seeded from seed,
// using the default queue (ladder) and a private event pool.
func NewEngine(seed uint64) *Engine {
	return NewEngineOpts(seed, EngineOptions{})
}

// NewEngineOpts is NewEngine with explicit internals, for A/B runs
// (rtsim -queue, kernel.Config.EventQueue) and pooled replication.
func NewEngineOpts(seed uint64, opts EngineOptions) *Engine {
	if !opts.Queue.Valid() {
		panic(fmt.Sprintf("sim: unknown queue kind %q", opts.Queue))
	}
	kind := opts.Queue
	if kind == "" {
		kind = defaultQueueKind
	}
	pool := opts.Pool
	if pool == nil {
		if opts.NoPool {
			pool = newAllocPool()
		} else {
			pool = NewEventPool()
		}
	}
	if opts.Shards < 0 {
		panic(fmt.Sprintf("sim: negative shard count %d", opts.Shards))
	}
	return &Engine{
		q:    newQueue(kind, opts.Shards, opts.ShardLookahead),
		kind: kind, pool: pool, rng: NewRNG(seed),
	}
}

// SetShardHint installs the placement hint captured into subsequently
// scheduled events. The hint is sticky until the next SetShardHint —
// and dispatch re-installs the fired event's own hint, so events
// scheduled from a callback inherit the callback's shard unless the
// callback overrides it. On the sharded queue the hint picks the
// sub-queue (modulo shard count); on every other queue kind it is
// recorded but ignored. Placement is never part of eventOrder, so no
// hint can change results.
func (e *Engine) SetShardHint(s int) { e.shardHint = int32(s) }

// ShardHint reports the current placement hint.
func (e *Engine) ShardHint() int { return int(e.shardHint) }

// NextEventTime returns the fire time of the earliest pending event,
// or ok == false when nothing is pending. It drains lazily-cancelled
// queue heads like any dispatch would, but never advances the clock.
func (e *Engine) NextEventTime() (Time, bool) {
	n := e.peekLive()
	if n == nil {
		return 0, false
	}
	return n.At, true
}

// QueueKind reports which queue implementation the engine runs on.
func (e *Engine) QueueKind() QueueKind { return e.kind }

// PoolStats returns a snapshot of the engine's event-pool counters.
func (e *Engine) PoolStats() PoolStats { return e.pool.Stats() }

// PerturbTiebreaks installs a tie-break perturbation: same-instant
// events whose arbitration order is not pinned (Schedule/After) dispatch
// in a seeded pseudo-random permutation of their FIFO order instead of
// FIFO. salt == 0 restores plain FIFO. A perturbation-invariant model
// produces bit-identical results for every salt; a divergence under some
// salt is a tie-break race — a result that silently depends on the
// processing order of simultaneous events. The harness around this knob
// lives in internal/runner (Perturb) and cmd/reprocheck (-perturb).
//
// The perturbation must be installed before anything is scheduled (the
// queue is ordered by the tie-break key, so changing the key under queued
// events would corrupt it); installing it later panics.
func (e *Engine) PerturbTiebreaks(salt uint64) {
	if e.q.len() > 0 {
		panic("sim: PerturbTiebreaks after events were scheduled")
	}
	e.ord.salt = salt
	e.q.setSalt(salt)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at time at. Scheduling in the past panics:
// it always indicates a model bug, never valid input.
//
// If another event is already queued for the same instant, the two fire
// in FIFO order by default — but that order is NOT part of the model's
// contract: under a tie-break perturbation (PerturbTiebreaks) it is
// permuted, and results must not change. A schedule site whose
// same-instant ordering is semantically meaningful (it models a concrete
// hardware arbitration) must use SchedulePinned instead.
func (e *Engine) Schedule(at Time, fn func()) Event {
	return e.schedule(at, fn, false, EventTag{})
}

// ScheduleTagged is Schedule with a registered event kind and its
// constructor arguments attached. Tagged events survive
// snapshot/restore: SnapshotTo serialises (kind name, args) and the
// restore side rebuilds the callback through the kind's registered
// constructor. Production schedule sites that can be live at a
// checkpoint must use the tagged variants; anonymous closures are for
// tests and run-to-completion tooling only.
func (e *Engine) ScheduleTagged(at Time, tag EventTag, fn func()) Event {
	return e.schedule(at, fn, false, tag)
}

// SchedulePinned is Schedule for events whose same-instant FIFO
// arbitration is a declared part of the model: tie-break perturbation
// leaves the relative order of pinned events untouched. Use it
// sparingly, and document at the call site which hardware arbitration
// the FIFO order stands in for — pinned sites are exactly the schedule
// points the tie-break race detector cannot check.
func (e *Engine) SchedulePinned(at Time, fn func()) Event {
	return e.schedule(at, fn, true, EventTag{})
}

// SchedulePinnedTagged is SchedulePinned with a snapshot tag; see
// ScheduleTagged.
func (e *Engine) SchedulePinnedTagged(at Time, tag EventTag, fn func()) Event {
	return e.schedule(at, fn, true, tag)
}

// schedule is the common push path behind Schedule/After and their
// Pinned variants: pool node out, fields in, queue push. It is a
// hot-path root for the hotalloc analyzer — everything reachable from
// here must be allocation-free in steady state.
//
//simlint:hotpath
func (e *Engine) schedule(at Time, fn func(), pinned bool, tag EventTag) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	n := e.pool.get()
	n.At = at
	n.seq = e.nextSeq
	n.fn = fn
	n.pinned = pinned
	n.shard = e.shardHint
	n.tag = tag
	e.nextSeq++
	e.q.push(n)
	e.live++
	e.sanOnSchedule(n)
	return Event{n: n, gen: n.gen}
}

// After queues fn to run d from now (d < 0 is clamped to now).
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterTagged is After with a snapshot tag; see ScheduleTagged.
func (e *Engine) AfterTagged(d Duration, tag EventTag, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleTagged(e.now.Add(d), tag, fn)
}

// AfterPinned is After with pinned same-instant arbitration; see
// SchedulePinned.
func (e *Engine) AfterPinned(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.SchedulePinned(e.now.Add(d), fn)
}

// AfterPinnedTagged is AfterPinned with a snapshot tag; see
// ScheduleTagged.
func (e *Engine) AfterPinnedTagged(d Duration, tag EventTag, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.SchedulePinnedTagged(e.now.Add(d), tag, fn)
}

// checkGen panics if a handle claims a generation its node has not
// reached. That can only happen through handle forgery or memory
// corruption — a real stale handle is always *behind* the node, because
// the pool bumps the generation on every recycle.
func checkGen(ev Event) {
	if ev.n != nil && ev.gen > ev.n.gen {
		panic(fmt.Sprintf(
			"sim: event handle generation mismatch: handle gen %d ahead of node gen %d",
			ev.gen, ev.n.gen))
	}
}

// Cancel removes a pending event.
//
// The contract is explicit: Cancel is a no-op unless the handle is
// still Pending. In particular (a) the zero Event, (b) a handle whose
// event already fired, (c) a handle cancelled before — including a
// cancel issued by a callback running in the same dispatch batch — and
// (d) a handle whose node was recycled for an unrelated event are all
// safe no-ops, detected by the generation check, never by pointer
// comparison or queue-position conventions. Callers can therefore
// cancel unconditionally. Cancellation is lazy: the node stays queued
// until the queue surfaces it, at which point it is skipped and
// recycled.
func (e *Engine) Cancel(ev Event) {
	checkGen(ev)
	if !ev.Pending() {
		return
	}
	ev.n.state = nodeCancelled
	ev.n.fn = nil
	e.live--
	e.sanOnCancel(ev.n)
}

// Reschedule moves a pending event to a new time, preserving its
// callback, its pinned/unpinned arbitration class and its snapshot tag.
// If the event already fired or was cancelled it returns the zero
// Event; otherwise it returns the new handle.
func (e *Engine) Reschedule(ev Event, at Time) Event {
	checkGen(ev)
	if !ev.Pending() {
		return Event{}
	}
	fn, pinned, tag := ev.n.fn, ev.n.pinned, ev.n.tag
	e.Cancel(ev)
	return e.schedule(at, fn, pinned, tag)
}

// peekLive returns the next pending node without removing it, draining
// and recycling lazily-cancelled nodes on the way. Cancelled nodes
// still route through the sanitizer's pop-order check: their removal
// position is part of the total order too.
func (e *Engine) peekLive() *eventNode {
	for {
		n := e.q.peek()
		if n == nil {
			return nil
		}
		if n.state == nodeCancelled {
			e.q.pop()
			e.sanOnPop(n)
			e.pool.put(n)
			continue
		}
		return n
	}
}

// fireHead dispatches the queue head, which the caller has verified is
// pending. The node is recycled *before* the callback runs, so every
// outstanding handle to it is already stale inside the callback — a
// callback that cancels its own event is a detected no-op, not a heap
// corruption.
func (e *Engine) fireHead() {
	n := e.q.pop()
	e.live--
	e.sanOnPop(n)
	fn := n.fn
	e.fired++
	// Re-install the fired event's placement hint so events the callback
	// schedules land on the same shard as their parent (see SetShardHint).
	e.shardHint = n.shard
	e.pool.put(n)
	fn()
}

// runBatch sets the clock to at and dispatches every event at exactly
// that instant in one pass — including events the callbacks themselves
// schedule for the current instant, which join the batch in tie-break
// order. Stop interrupts the batch after the current event. It is a
// hot-path root for the hotalloc analyzer (the dispatch loop itself;
// user callbacks are not pulled in — they resolve through the node's
// fn field, which the call graph deliberately leaves opaque).
//
//simlint:hotpath
func (e *Engine) runBatch(at Time) {
	e.sanOnAdvance(at)
	e.now = at
	for !e.stopped {
		n := e.peekLive()
		if n == nil || n.At != at {
			return
		}
		e.fireHead()
	}
}

// Step dispatches the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	n := e.peekLive()
	if n == nil {
		return false
	}
	e.sanOnAdvance(n.At)
	e.now = n.At
	e.fireHead()
	return true
}

// Run dispatches events until the queue is empty, until is reached, or
// Stop is called. Events at exactly until still fire. It returns the time
// the engine stopped at.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		next := e.peekLive()
		if next == nil || next.At > until {
			break
		}
		e.runBatch(next.At)
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunAll dispatches events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped {
		next := e.peekLive()
		if next == nil {
			break
		}
		e.runBatch(next.At)
	}
	return e.now
}

// Stop makes the current Run/RunAll return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop interrupted the last Run/RunAll (and the
// stop has not been cleared by a subsequent Run). The bisection replayer
// uses it to tell "budget exhausted" from "queue drained".
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of queued events that are still pending
// (cancelled-but-not-yet-drained events are not counted).
func (e *Engine) Pending() int { return e.live }
