package sim

import "fmt"

// Engine runs a discrete-event simulation. It is not safe for concurrent
// use: the whole simulation is single-threaded and deterministic by design
// (real SMP hardware is modelled, not exploited).
type Engine struct {
	now     Time
	heap    eventHeap
	nextSeq uint64
	rng     *RNG
	// Stopped is set by Stop and checked by Run.
	stopped bool
	// fired counts events dispatched, for diagnostics and budget checks.
	fired uint64
}

// NewEngine returns an engine at time 0 with an RNG seeded from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at time at. Scheduling in the past panics:
// it always indicates a model bug, never valid input.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	ev := &Event{At: at, seq: e.nextSeq, fn: fn, index: -1}
	e.nextSeq++
	e.heap.push(ev)
	return ev
}

// After queues fn to run d from now (d < 0 is clamped to now).
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fn == nil {
		return
	}
	ev.fn = nil
	if ev.index >= 0 {
		e.heap.remove(ev.index)
	}
}

// Reschedule moves a pending event to a new time, preserving its callback.
// If the event already fired or was cancelled it returns nil; otherwise it
// returns the (new) event handle.
func (e *Engine) Reschedule(ev *Event, at Time) *Event {
	if ev == nil || ev.fn == nil {
		return nil
	}
	fn := ev.fn
	e.Cancel(ev)
	return e.Schedule(at, fn)
}

// Step dispatches the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for e.heap.len() > 0 {
		ev := e.heap.pop()
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.At
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty, until is reached, or
// Stop is called. Events at exactly until still fire. It returns the time
// the engine stopped at.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped && e.heap.len() > 0 {
		// Peek without popping so an event after `until` stays queued.
		next := e.heap.items[0]
		if next.fn == nil {
			e.heap.pop()
			continue
		}
		if next.At > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunAll dispatches events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// Stop makes the current Run/RunAll return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap.items {
		if ev != nil && ev.fn != nil {
			n++
		}
	}
	return n
}
