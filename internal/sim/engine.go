package sim

import "fmt"

// Engine runs a discrete-event simulation. It is not safe for concurrent
// use: the whole simulation is single-threaded and deterministic by design
// (real SMP hardware is modelled, not exploited).
type Engine struct {
	now     Time
	heap    eventHeap
	nextSeq uint64
	rng     *RNG
	// Stopped is set by Stop and checked by Run.
	stopped bool
	// fired counts events dispatched, for diagnostics and budget checks.
	fired uint64
	// san is the build-tag-gated sanitizer state: a zero-size no-op
	// under the default build, shadow-check state under -tags simsan.
	san sanState
}

// NewEngine returns an engine at time 0 with an RNG seeded from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// PerturbTiebreaks installs a tie-break perturbation: same-instant
// events whose arbitration order is not pinned (Schedule/After) dispatch
// in a seeded pseudo-random permutation of their FIFO order instead of
// FIFO. salt == 0 restores plain FIFO. A perturbation-invariant model
// produces bit-identical results for every salt; a divergence under some
// salt is a tie-break race — a result that silently depends on the
// processing order of simultaneous events. The harness around this knob
// lives in internal/runner (Perturb) and cmd/reprocheck (-perturb).
//
// The perturbation must be installed before anything is scheduled (the
// heap is ordered by the tie-break key, so changing the key under queued
// events would corrupt it); installing it later panics.
func (e *Engine) PerturbTiebreaks(salt uint64) {
	if len(e.heap.items) > 0 {
		panic("sim: PerturbTiebreaks after events were scheduled")
	}
	e.heap.salt = salt
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at time at. Scheduling in the past panics:
// it always indicates a model bug, never valid input.
//
// If another event is already queued for the same instant, the two fire
// in FIFO order by default — but that order is NOT part of the model's
// contract: under a tie-break perturbation (PerturbTiebreaks) it is
// permuted, and results must not change. A schedule site whose
// same-instant ordering is semantically meaningful (it models a concrete
// hardware arbitration) must use SchedulePinned instead.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.schedule(at, fn, false)
}

// SchedulePinned is Schedule for events whose same-instant FIFO
// arbitration is a declared part of the model: tie-break perturbation
// leaves the relative order of pinned events untouched. Use it
// sparingly, and document at the call site which hardware arbitration
// the FIFO order stands in for — pinned sites are exactly the schedule
// points the tie-break race detector cannot check.
func (e *Engine) SchedulePinned(at Time, fn func()) *Event {
	return e.schedule(at, fn, true)
}

func (e *Engine) schedule(at Time, fn func(), pinned bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	ev := &Event{At: at, seq: e.nextSeq, fn: fn, index: -1, pinned: pinned}
	e.nextSeq++
	e.heap.push(ev)
	e.sanOnSchedule(ev)
	return ev
}

// After queues fn to run d from now (d < 0 is clamped to now).
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterPinned is After with pinned same-instant arbitration; see
// SchedulePinned.
func (e *Engine) AfterPinned(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.SchedulePinned(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fn == nil {
		return
	}
	ev.fn = nil
	if ev.index >= 0 {
		e.heap.remove(ev.index)
	}
}

// Reschedule moves a pending event to a new time, preserving its callback
// and its pinned/unpinned arbitration class. If the event already fired or
// was cancelled it returns nil; otherwise it returns the (new) event
// handle.
func (e *Engine) Reschedule(ev *Event, at Time) *Event {
	if ev == nil || ev.fn == nil {
		return nil
	}
	fn, pinned := ev.fn, ev.pinned
	e.Cancel(ev)
	return e.schedule(at, fn, pinned)
}

// pop removes the heap minimum, routing every removal through the
// sanitizer's pop-order shadow check (a no-op in the default build).
func (e *Engine) pop() *Event {
	ev := e.heap.pop()
	e.sanOnPop(ev)
	return ev
}

// Step dispatches the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for e.heap.len() > 0 {
		ev := e.pop()
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.At
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty, until is reached, or
// Stop is called. Events at exactly until still fire. It returns the time
// the engine stopped at.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped && e.heap.len() > 0 {
		// Peek without popping so an event after `until` stays queued.
		next := e.heap.items[0]
		if next.fn == nil {
			e.pop()
			continue
		}
		if next.At > until {
			break
		}
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunAll dispatches events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// Stop makes the current Run/RunAll return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap.items {
		if ev != nil && ev.fn != nil {
			n++
		}
	}
	return n
}
