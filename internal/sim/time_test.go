package sim

import "testing"

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{13200, "13.20µs"},
		{565 * Microsecond, "565.00µs"},
		{1565 * Microsecond, "1.565ms"},
		{92300 * Microsecond, "92.300ms"},
		{1451900 * Microsecond, "1.4519s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	t1 := t0.Add(500)
	if t1 != 1500 {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != 500 {
		t.Fatalf("Sub: got %v", d)
	}
}

func TestConversions(t *testing.T) {
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros = %v, want 3", got)
	}
	if got := Time(1500).Micros(); got != 1.5 {
		t.Errorf("Time.Micros = %v, want 1.5", got)
	}
	if got := Time(2500000).Millis(); got != 2.5 {
		t.Errorf("Time.Millis = %v, want 2.5", got)
	}
}

func TestDurationOf(t *testing.T) {
	if got := DurationOf(1.5); got != 1500*Millisecond {
		t.Fatalf("DurationOf(1.5) = %v", got)
	}
	if got := DurationOf(0); got != 0 {
		t.Fatalf("DurationOf(0) = %v", got)
	}
}

func TestScale(t *testing.T) {
	if got := (1000 * Nanosecond).Scale(1.5); got != 1500 {
		t.Fatalf("Scale(1.5) = %v", got)
	}
	if got := (Duration(0)).Scale(5); got != 0 {
		t.Fatalf("Scale of zero = %v", got)
	}
	if got := (Duration(-10)).Scale(5); got != 0 {
		t.Fatalf("Scale of negative = %v, want 0", got)
	}
	// Rounds to nearest.
	if got := (Duration(3)).Scale(0.5); got != 2 {
		t.Fatalf("Scale rounding: got %v, want 2", got)
	}
}
