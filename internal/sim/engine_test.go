package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must fire FIFO)", i, v, i)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel of the zero handle must be no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var victim Event
	e.Schedule(5, func() { e.Cancel(victim) })
	victim = e.Schedule(10, func() { fired = true })
	e.RunAll()
	if fired {
		t.Fatal("event cancelled from an earlier event still fired")
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	ev := e.Schedule(10, func() { at = e.Now() })
	ev = e.Reschedule(ev, 25)
	if !ev.Valid() {
		t.Fatal("Reschedule returned the zero Event for a pending event")
	}
	e.RunAll()
	if at != 25 {
		t.Fatalf("rescheduled event fired at %v, want 25", at)
	}
	if e.Reschedule(ev, 99).Valid() {
		t.Fatal("Reschedule of a fired event should return the zero Event")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		e.Schedule(at, func() { fired = append(fired, e.Now()) })
	}
	end := e.Run(20)
	if end != 20 {
		t.Fatalf("Run returned %v, want 20", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (event at boundary must fire)", len(fired))
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Continue; the remaining event must still fire.
	e.Run(100)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second Run, want 3", len(fired))
	}
}

func TestRunAdvancesToUntilWhenIdle(t *testing.T) {
	e := NewEngine(1)
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %v after idle Run(1000), want 1000", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("dispatched %d events, want 1 (Stop must halt the loop)", count)
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(50, func() {})
	e.Run(50)
	fired := false
	e.After(-10, func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("After with negative duration did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var seq []Time
	e.Schedule(10, func() {
		seq = append(seq, e.Now())
		e.After(5, func() { seq = append(seq, e.Now()) })
	})
	e.RunAll()
	if len(seq) != 2 || seq[0] != 10 || seq[1] != 15 {
		t.Fatalf("seq = %v, want [10 15]", seq)
	}
}

// Property: for any multiset of schedule times, events fire in sorted order
// and time never goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(42)
		var fired []Time
		for _, u := range times {
			e.Schedule(Time(u), func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, u := range times {
			want[i] = Time(u)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to
// fire, still in order.
func TestQuickCancelSubset(t *testing.T) {
	f := func(times []uint16, mask []bool) bool {
		e := NewEngine(7)
		fired := map[int]bool{}
		events := make([]Event, len(times))
		for i, u := range times {
			i := i
			events[i] = e.Schedule(Time(u), func() { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := range events {
			if i < len(mask) && mask[i] {
				e.Cancel(events[i])
				cancelled[i] = true
			}
		}
		e.RunAll()
		for i := range times {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelInteriorEvents(t *testing.T) {
	// Cancel events scattered through the queue interior; lazy
	// cancellation must skip exactly those at dispatch time.
	e := NewEngine(1)
	var events []Event
	for i := 100; i > 0; i-- {
		events = append(events, e.Schedule(Time(i), func() {}))
	}
	// Remove every third event.
	removed := 0
	for i := 0; i < len(events); i += 3 {
		e.Cancel(events[i])
		removed++
	}
	if got := e.Pending(); got != 100-removed {
		t.Fatalf("Pending() = %d, want %d", got, 100-removed)
	}
	last := Time(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatal("time went backwards after interior removals")
		}
		last = e.Now()
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%64), func() {})
		e.Step()
	}
}

// BenchmarkScheduleDispatchPinned covers the pinned-arbitration path
// plus the sanitizer hooks on the hot schedule/pop sequence. In the
// default (untagged) build sanState is a zero-size no-op whose methods
// compile away, so this bench doubles as the guard that enabling the
// simsan plumbing costs nothing unless `-tags simsan` asks for it:
// compare `go test -bench ScheduleDispatch ./internal/sim` against the
// same with `-tags simsan` to see the (opt-in) overhead.
func BenchmarkScheduleDispatchPinned(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterPinned(Duration(i%64), func() {})
		e.Step()
	}
}

// BenchmarkScheduleDispatchSalted measures the perturbed tie-break
// path: key() mixes the sequence through splitmix64 instead of using
// it raw, which is the only per-event cost -perturb adds.
func BenchmarkScheduleDispatchSalted(b *testing.B) {
	e := NewEngine(1)
	e.PerturbTiebreaks(0x5eed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%64), func() {})
		e.Step()
	}
}
