//go:build simsan

package sim

import "fmt"

// sanState is the simsan shadow checker (-tags simsan): a second,
// independent bookkeeper of the engine's ordering contract. The event
// queue is the simulator's one piece of load-bearing cleverness (a
// ladder/calendar queue plus a pooled allocator on the hottest path),
// so the sanitizer re-checks its externally visible guarantees on every
// operation instead of trusting it:
//
//   - virtual time is monotone: no event fires before the clock,
//   - pops are globally ordered: every queue minimum removed is >= the
//     previous one in (At, tie-break key),
//   - the queue's internal shape stays valid — ladder window/bucket/far
//     invariants or the reference heap property, via eventQueue.validate
//     (checked in full periodically, so corruption is caught near its
//     cause rather than at the end),
//   - the event pool stays consistent: free-list nodes are actually
//     free and callback-less, and the engine's live-event count matches
//     a fresh count over the queue.
//
// A violation panics with the evidence; simsan is a test configuration
// (CI's sanitize job runs `go test -tags simsan ./...`), so failing loud
// and early is the point.
type sanState struct {
	popped  bool
	lastAt  Time
	lastKey uint64
	pops    uint64
}

// sanValidateEvery is how many pops pass between full O(n) queue and
// pool validations. Power of two so the modulo folds to a mask.
const sanValidateEvery = 1024

func (e *Engine) sanOnSchedule(n *eventNode) {
	if n.At < e.now {
		panic(fmt.Sprintf("simsan: event scheduled at %v, before now %v", n.At, e.now))
	}
	if n.state != nodePending {
		panic(fmt.Sprintf("simsan: scheduled node (gen %d) in state %s, want pending", n.gen, n.state))
	}
	if n.fn == nil {
		panic(fmt.Sprintf("simsan: scheduled node (gen %d) has no callback", n.gen))
	}
	// A callback may legally schedule a new event for the current
	// instant whose perturbed tie-break key sorts below the event just
	// popped; lower the pop-order floor so that is not misreported.
	// (With salt == 0 keys are sequence numbers, which only grow, so the
	// floor never moves.)
	if e.san.popped && n.At == e.san.lastAt {
		if k := e.ord.key(n); k < e.san.lastKey {
			e.san.lastKey = k
		}
	}
}

func (e *Engine) sanOnCancel(n *eventNode) {
	if n.state != nodeCancelled {
		panic(fmt.Sprintf("simsan: cancelled node (gen %d) in state %s, want cancelled", n.gen, n.state))
	}
	if n.fn != nil {
		panic(fmt.Sprintf("simsan: cancelled node (gen %d) retains its callback", n.gen))
	}
	if e.live < 0 {
		panic(fmt.Sprintf("simsan: live event count went negative (%d)", e.live))
	}
}

// sanOnAdvance guards the clock before Step/runBatch move it to the
// next dispatch instant.
func (e *Engine) sanOnAdvance(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("simsan: dispatch at %v, before now %v — virtual clock would regress", at, e.now))
	}
}

func (e *Engine) sanOnPop(n *eventNode) {
	// Cancelled nodes are exempt from the clock check: cancellation is
	// lazy, so a node cancelled behind an idle clock advancement (Run
	// past it with nothing to do) legitimately drains with At < now.
	if n.At < e.now && n.state != nodeCancelled {
		panic(fmt.Sprintf("simsan: popped event at %v, before now %v — virtual clock would regress", n.At, e.now))
	}
	if n.state == nodeFree {
		panic(fmt.Sprintf("simsan: popped node (gen %d) is on the free list", n.gen))
	}
	// Local minimality: a pop must never leave a smaller node behind.
	// This holds for every pop — pending or cancelled — because the
	// engine only removes the queue surface.
	if m := e.q.peek(); m != nil && e.ord.less(m, n) {
		panic(fmt.Sprintf("simsan: pop order violation: (%v, key %d) popped while (%v, key %d) still queued",
			n.At, e.ord.key(n), m.At, e.ord.key(m)))
	}
	key := e.ord.key(n)
	if n.state == nodeCancelled {
		// A cancelled node drains when it surfaces as the queue minimum,
		// which can be far ahead of the clock; events scheduled after
		// the drain may then legitimately pop behind it. Cancelled pops
		// therefore leave the global (At, key) watermark untouched — the
		// local-minimality check above still pins their ordering.
		e.sanCountPop()
		return
	}
	if e.san.popped && (n.At < e.san.lastAt || (n.At == e.san.lastAt && key < e.san.lastKey)) {
		panic(fmt.Sprintf("simsan: pop order violation: (%v, key %d) after (%v, key %d)",
			n.At, key, e.san.lastAt, e.san.lastKey))
	}
	e.san.popped = true
	e.san.lastAt = n.At
	e.san.lastKey = key
	e.sanCountPop()
}

// sanOnRestore resets the pop-order watermark after a snapshot restore:
// restore drains the freshly-constructed machine's boot events (whose
// pops can push the (At, key) watermark arbitrarily far ahead) and then
// re-seeds the queue with the checkpoint's pending events, which may
// legitimately fire earlier than the drained boot tail.
func (e *Engine) sanOnRestore() {
	e.san.popped = false
	e.san.lastAt = 0
	e.san.lastKey = 0
}

// sanCountPop ticks the pop counter and runs the periodic full audit.
func (e *Engine) sanCountPop() {
	e.san.pops++
	if e.san.pops%sanValidateEvery == 0 {
		e.sanValidate()
	}
}

// sanValidate runs the full O(n) structural audit: queue-implementation
// invariants, pool free-list consistency, and the live-count
// cross-check.
func (e *Engine) sanValidate() {
	fail := func(msg string) { panic("simsan: " + msg) }
	e.q.validate(fail)
	e.pool.validate(fail)
	live, queued := 0, 0
	e.q.each(func(n *eventNode) {
		queued++
		switch n.state {
		case nodePending:
			if n.fn == nil {
				fail(fmt.Sprintf("pending node at %v (gen %d) has no callback", n.At, n.gen))
			}
			live++
		case nodeCancelled:
			if n.fn != nil {
				fail(fmt.Sprintf("cancelled node at %v (gen %d) retains its callback", n.At, n.gen))
			}
		default:
			fail(fmt.Sprintf("queued node at %v (gen %d) in state %s", n.At, n.gen, n.state))
		}
	})
	if queued != e.q.len() {
		fail(fmt.Sprintf("queue len %d != visited %d", e.q.len(), queued))
	}
	if live != e.live {
		fail(fmt.Sprintf("engine live count %d != queue live count %d", e.live, live))
	}
}

// SanitizerEnabled reports whether this binary was built with the
// simsan shadow checker (-tags simsan).
func SanitizerEnabled() bool { return true }
