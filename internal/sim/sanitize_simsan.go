//go:build simsan

package sim

import "fmt"

// sanState is the simsan shadow checker (-tags simsan): a second,
// independent bookkeeper of the engine's ordering contract. The event
// heap is the simulator's one piece of load-bearing cleverness (a
// hand-rolled min-heap on the hottest path), so the sanitizer re-checks
// its externally visible guarantees on every operation instead of
// trusting it:
//
//   - virtual time is monotone: no event fires before the clock,
//   - pops are globally ordered: every heap minimum removed is >= the
//     previous one in (At, tie-break key),
//   - the heap shape itself stays valid (checked in full periodically,
//     so corruption is caught near its cause rather than at the end).
//
// A violation panics with the evidence; simsan is a test configuration
// (CI's sanitize job runs `go test -tags simsan ./...`), so failing loud
// and early is the point.
type sanState struct {
	popped  bool
	lastAt  Time
	lastKey uint64
	pops    uint64
}

// sanValidateEvery is how many pops pass between full O(n) heap-shape
// validations. Power of two so the modulo folds to a mask.
const sanValidateEvery = 1024

func (e *Engine) sanOnSchedule(ev *Event) {
	if ev.At < e.now {
		panic(fmt.Sprintf("simsan: event scheduled at %v, before now %v", ev.At, e.now))
	}
	if ev.index < 0 || ev.index >= len(e.heap.items) || e.heap.items[ev.index] != ev {
		panic(fmt.Sprintf("simsan: scheduled event has bad heap index %d (heap len %d)", ev.index, len(e.heap.items)))
	}
	// A callback may legally schedule a new event for the current
	// instant whose perturbed tie-break key sorts below the event just
	// popped; lower the pop-order floor so that is not misreported.
	// (With salt == 0 keys are sequence numbers, which only grow, so the
	// floor never moves.)
	if e.san.popped && ev.At == e.san.lastAt {
		if k := e.heap.key(ev); k < e.san.lastKey {
			e.san.lastKey = k
		}
	}
}

func (e *Engine) sanOnPop(ev *Event) {
	if ev.At < e.now {
		panic(fmt.Sprintf("simsan: popped event at %v, before now %v — virtual clock would regress", ev.At, e.now))
	}
	key := e.heap.key(ev)
	if e.san.popped && (ev.At < e.san.lastAt || (ev.At == e.san.lastAt && key < e.san.lastKey)) {
		panic(fmt.Sprintf("simsan: pop order violation: (%v, key %d) after (%v, key %d)",
			ev.At, key, e.san.lastAt, e.san.lastKey))
	}
	e.san.popped = true
	e.san.lastAt = ev.At
	e.san.lastKey = key
	e.san.pops++
	if e.san.pops%sanValidateEvery == 0 {
		e.sanValidateHeap()
	}
}

// sanValidateHeap walks the whole heap checking the min-heap property
// and the items' back-indices.
func (e *Engine) sanValidateHeap() {
	h := &e.heap
	for i, ev := range h.items {
		if ev == nil {
			panic(fmt.Sprintf("simsan: nil event at heap index %d", i))
		}
		if ev.index != i {
			panic(fmt.Sprintf("simsan: heap index desync: items[%d].index = %d", i, ev.index))
		}
		if i > 0 {
			parent := (i - 1) / 2
			if h.less(i, parent) {
				panic(fmt.Sprintf("simsan: heap property violated: items[%d] (%v) < parent items[%d] (%v)",
					i, ev.At, parent, h.items[parent].At))
			}
		}
	}
}

// SanitizerEnabled reports whether this binary was built with the
// simsan shadow checker (-tags simsan).
func SanitizerEnabled() bool { return true }
