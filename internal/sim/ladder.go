package sim

import "fmt"

// Ladder/calendar queue: a two-level timer structure shaped like the
// kernel timer wheel it simulates.
//
// Near future — a circular array of ladderBuckets buckets, each
// covering a slot of 2^ladderSlotBits ns (~65.5 µs; the whole window is
// ~16.8 ms, comfortably wider than the simulated kernel's jiffy and
// local-tick periods). A push inside the window is O(1): append to
// buckets[slot%ladderBuckets], unsorted.
//
// Far future — pushes beyond the window go to an overflow binary heap
// ordered by At alone. As the window slides forward, far nodes whose
// slot has entered the window migrate into their buckets (pullFar).
// Tie order inside the far heap is irrelevant: same-At nodes always
// land in the same bucket and are totally ordered by the bucket sort.
//
// Dispatch — when the current run is exhausted, the next non-empty
// bucket is located (O(1) amortised: each bucket is visited once per
// window lap), copied into the reusable run slice, and sorted by the
// full eventOrder. Sorting per-bucket instead of globally is the win:
// the heap paid O(log n) per operation on the *total* queue size, the
// ladder pays O(k log k) per *bucket* of k co-located events, and
// buckets are small because simulated timers cluster by period. seq
// numbers make eventOrder total, so the sort has exactly one result and
// the pop sequence is bit-identical to the reference heap's — the
// differential fuzz harness (FuzzDiffQueue) holds the two
// implementations to that word for word.
//
// Pushes that land on the slot currently being drained are
// sorted-inserted into the un-popped tail of the run, so an event
// scheduled during dispatch at the same instant still fires in exact
// eventOrder position — identical to the heap, where such a push
// becomes the new minimum.
//
// Rewind — Run(until) can advance the clock into the middle of the
// window, or peek can slide the window past a gap, and a later push may
// then target a slot behind the window start. That push would be
// mis-ordered if forced into the circular array, so the queue rewinds:
// dump the run remnant and every bucket into the far heap, restart the
// window at the push's slot, and re-migrate. It is O(n log n) but rare
// (only externally-driven clock patterns trigger it); the fuzz corpus
// seeds this path explicitly.
const (
	ladderSlotBits = 16 // slot width 2^16 ns ≈ 65.5 µs
	ladderBuckets  = 256
	ladderSlotMask = ladderBuckets - 1
)

func ladderSlotOf(at Time) uint64 { return uint64(at) >> ladderSlotBits }

type ladderQueue struct {
	ord eventOrder

	// slot is the window start: every node at a smaller slot has been
	// drained (except the sorted run remnant, which is exactly at slot).
	slot      uint64
	buckets   [ladderBuckets][]*eventNode
	inBuckets int

	// run is the current slot's nodes in eventOrder; run[runHead:] is
	// the un-popped remainder. The slice is reused across refills.
	run     []*eventNode
	runHead int

	far  farHeap
	size int
}

func newLadderQueue() *ladderQueue { return &ladderQueue{} }

func (q *ladderQueue) setSalt(salt uint64) {
	q.ord.salt = salt
	q.far.resort()
}

func (q *ladderQueue) len() int { return q.size }

func (q *ladderQueue) runActive() bool { return q.runHead < len(q.run) }

// push files n into the active run, its bucket, or the far heap.
//
//simlint:hotpath
func (q *ladderQueue) push(n *eventNode) {
	s := ladderSlotOf(n.At)
	if s < q.slot {
		q.rewind(s)
	}
	q.size++
	switch {
	case s == q.slot && q.runActive():
		q.insertRun(n)
	case s < q.slot+ladderBuckets:
		//simlint:allow hotalloc bucket append is amortized O(1); capacity persists across windows
		q.buckets[s&ladderSlotMask] = append(q.buckets[s&ladderSlotMask], n)
		q.inBuckets++
	default:
		q.far.push(n)
	}
}

// peek surfaces the head without removing it.
//
//simlint:hotpath
func (q *ladderQueue) peek() *eventNode {
	if !q.runActive() && !q.refill() {
		return nil
	}
	return q.run[q.runHead]
}

// pop removes and returns the head.
//
//simlint:hotpath
func (q *ladderQueue) pop() *eventNode {
	if !q.runActive() && !q.refill() {
		return nil
	}
	n := q.run[q.runHead]
	q.run[q.runHead] = nil
	q.runHead++
	q.size--
	return n
}

// insertRun places n into the un-popped tail of the active run at its
// eventOrder position (binary search + shift). The position can be the
// current head: a node scheduled mid-dispatch for the current instant
// fires next, exactly as it would after becoming the heap minimum.
func (q *ladderQueue) insertRun(n *eventNode) {
	lo, hi := q.runHead, len(q.run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.ord.less(q.run[mid], n) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	//simlint:allow hotalloc run append is amortized; the run slice is reused every bucket sort
	q.run = append(q.run, nil)
	copy(q.run[lo+1:], q.run[lo:len(q.run)-1])
	q.run[lo] = n
}

// refill locates the next non-empty slot, migrates newly in-window far
// nodes, and sorts that slot's bucket into the run slice. Returns false
// when the queue is empty.
func (q *ladderQueue) refill() bool {
	q.run = q.run[:0]
	q.runHead = 0
	if q.size == 0 {
		return false
	}
	for {
		if q.inBuckets > 0 {
			for i := uint64(0); i < ladderBuckets; i++ {
				s := q.slot + i
				idx := s & ladderSlotMask
				if len(q.buckets[idx]) == 0 {
					continue
				}
				if s != q.slot {
					// The window start slides to s; far nodes whose slot
					// just entered [s, s+ladderBuckets) move in.
					q.slot = s
					q.pullFar()
				}
				b := q.buckets[idx]
				//simlint:allow hotalloc refill reuses q.run's capacity; grows only on a record bucket
				q.run = append(q.run[:0], b...)
				for j := range b {
					b[j] = nil
				}
				q.buckets[idx] = b[:0]
				q.inBuckets -= len(q.run)
				sortNodes(q.ord, q.run)
				return true
			}
			panic("sim: ladder queue inBuckets > 0 but no bucket in window")
		}
		// Window is empty; jump straight to the earliest far slot.
		top := q.far.peek()
		if top == nil {
			panic("sim: ladder queue size > 0 but buckets and far are empty")
		}
		q.slot = ladderSlotOf(top.At)
		q.pullFar()
	}
}

// pullFar migrates far-heap nodes whose slot has entered the current
// window into their buckets.
func (q *ladderQueue) pullFar() {
	limit := q.slot + ladderBuckets
	for {
		top := q.far.peek()
		if top == nil || ladderSlotOf(top.At) >= limit {
			return
		}
		n := q.far.pop()
		idx := ladderSlotOf(n.At) & ladderSlotMask
		//simlint:allow hotalloc far-to-bucket drain is the rewind slow path, not steady state
		q.buckets[idx] = append(q.buckets[idx], n)
		q.inBuckets++
	}
}

// rewind restarts the window at slot s < q.slot. Everything queued is
// parked in the far heap, then re-migrated against the new window.
func (q *ladderQueue) rewind(s uint64) {
	for _, n := range q.run[q.runHead:] {
		q.far.push(n)
	}
	q.run = q.run[:0]
	q.runHead = 0
	for i := range q.buckets {
		for j, n := range q.buckets[i] {
			q.far.push(n)
			q.buckets[i][j] = nil
		}
		q.buckets[i] = q.buckets[i][:0]
	}
	q.inBuckets = 0
	q.slot = s
	q.pullFar()
}

func (q *ladderQueue) each(fn func(*eventNode)) {
	for _, n := range q.run[q.runHead:] {
		fn(n)
	}
	for i := range q.buckets {
		for _, n := range q.buckets[i] {
			fn(n)
		}
	}
	for _, n := range q.far.items {
		fn(n)
	}
}

func (q *ladderQueue) validate(fail func(string)) {
	counted := (len(q.run) - q.runHead) + q.inBuckets + q.far.len()
	if counted != q.size {
		fail(fmt.Sprintf("ladder: size %d != counted %d (run %d + buckets %d + far %d)",
			q.size, counted, len(q.run)-q.runHead, q.inBuckets, q.far.len()))
		return
	}
	for i := q.runHead; i < len(q.run); i++ {
		n := q.run[i]
		if ladderSlotOf(n.At) != q.slot {
			fail(fmt.Sprintf("ladder: run node at %d has slot %d, want current slot %d",
				n.At, ladderSlotOf(n.At), q.slot))
			return
		}
		if i > q.runHead && !q.ord.less(q.run[i-1], n) {
			fail(fmt.Sprintf("ladder: run not strictly sorted at position %d", i))
			return
		}
	}
	total := 0
	for i := range q.buckets {
		for _, n := range q.buckets[i] {
			s := ladderSlotOf(n.At)
			if s < q.slot || s >= q.slot+ladderBuckets {
				fail(fmt.Sprintf("ladder: bucket node at %d (slot %d) outside window [%d,%d)",
					n.At, s, q.slot, q.slot+ladderBuckets))
				return
			}
			if s&ladderSlotMask != uint64(i) {
				fail(fmt.Sprintf("ladder: node with slot %d filed in bucket %d", s, i))
				return
			}
			total++
		}
	}
	if total != q.inBuckets {
		fail(fmt.Sprintf("ladder: inBuckets %d != actual %d", q.inBuckets, total))
		return
	}
	for i, n := range q.far.items {
		if ladderSlotOf(n.At) < q.slot+ladderBuckets {
			fail(fmt.Sprintf("ladder: far node at %d (slot %d) is inside window starting at %d",
				n.At, ladderSlotOf(n.At), q.slot))
			return
		}
		if i > 0 {
			parent := (i - 1) / 2
			if n.At < q.far.items[parent].At {
				fail(fmt.Sprintf("ladder: far heap property violated at index %d", i))
				return
			}
		}
	}
}

// farHeap is a binary min-heap over At alone. Full eventOrder is not
// needed here: ties migrate to the same bucket and are totally ordered
// by the refill sort, so any At-consistent internal order yields the
// same pop sequence.
type farHeap struct {
	items []*eventNode
}

func (h *farHeap) len() int { return len(h.items) }

func (h *farHeap) peek() *eventNode {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *farHeap) push(n *eventNode) {
	//simlint:allow hotalloc far-heap growth is amortized; steady state reuses capacity
	h.items = append(h.items, n)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].At <= h.items[i].At {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *farHeap) pop() *eventNode {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	i, n := 0, len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.items[right].At < h.items[left].At {
			min = right
		}
		if h.items[min].At >= h.items[i].At {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// resort rebuilds the heap; a no-op for ordering (the heap ignores the
// salt) but kept so setSalt has a single obvious contract.
func (h *farHeap) resort() {}

// sortNodes sorts nodes ascending by ord. eventOrder is total (seq is
// unique), so every comparison sort produces the same permutation; the
// hybrid below exists only to keep refill allocation-free (sort.Slice
// allocates) and fast on the small buckets the ladder produces.
func sortNodes(ord eventOrder, nodes []*eventNode) {
	if len(nodes) <= 32 {
		for i := 1; i < len(nodes); i++ {
			n := nodes[i]
			j := i - 1
			for j >= 0 && ord.less(n, nodes[j]) {
				nodes[j+1] = nodes[j]
				j--
			}
			nodes[j+1] = n
		}
		return
	}
	// In-place heapsort for the rare large bucket (e.g. a far-heap dump
	// of many co-scheduled timers).
	for i := len(nodes)/2 - 1; i >= 0; i-- {
		siftNodes(ord, nodes, i, len(nodes))
	}
	for end := len(nodes) - 1; end > 0; end-- {
		nodes[0], nodes[end] = nodes[end], nodes[0]
		siftNodes(ord, nodes, 0, end)
	}
}

// siftNodes sifts a max-heap (by ord) rooted at i within nodes[:n].
func siftNodes(ord eventOrder, nodes []*eventNode, i, n int) {
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		max := left
		if right := left + 1; right < n && ord.less(nodes[left], nodes[right]) {
			max = right
		}
		if !ord.less(nodes[i], nodes[max]) {
			return
		}
		nodes[i], nodes[max] = nodes[max], nodes[i]
		i = max
	}
}
