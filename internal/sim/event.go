package sim

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be cancelled with Engine.Cancel. An Event must not be reused after it
// has fired or been cancelled.
type Event struct {
	// At is the virtual time the event fires.
	At Time
	// seq breaks ties between events scheduled for the same instant:
	// earlier-scheduled events fire first (FIFO at equal time), which the
	// kernel model relies on for determinism.
	seq uint64
	// fn is the callback; nil marks a cancelled event.
	fn func()
	// index is the position in the heap, or -1 when not queued.
	index int
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.fn == nil }

// eventHeap is a binary min-heap ordered by (At, seq). It implements the
// operations directly instead of going through container/heap to avoid the
// interface-call overhead on the simulator's hottest path.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(h.items)
	h.items = append(h.items, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	n := len(h.items) - 1
	h.swap(0, n)
	e := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	n := len(h.items) - 1
	if i != n {
		h.swap(i, n)
	}
	e := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if i != n && n > 0 {
		if !h.down(i) {
			h.up(i)
		}
	}
	e.index = -1
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the item at i down; it reports whether the item moved.
func (h *eventHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
	return i > start
}
