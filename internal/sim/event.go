package sim

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be cancelled with Engine.Cancel. An Event must not be reused after it
// has fired or been cancelled.
type Event struct {
	// At is the virtual time the event fires.
	At Time
	// seq breaks ties between events scheduled for the same instant:
	// earlier-scheduled events fire first (FIFO at equal time).
	seq uint64
	// fn is the callback; nil marks a cancelled event.
	fn func()
	// index is the position in the heap, or -1 when not queued.
	index int
	// pinned declares that this event's same-instant arbitration order
	// (FIFO) is part of the model, not an accident: under a tie-break
	// perturbation (Engine.PerturbTiebreaks) pinned events keep their
	// FIFO order among themselves while unpinned ties are permuted. The
	// few pinned sites in internal/kernel are the dynamic analogue of a
	// //simlint:allow directive — each one documents the hardware
	// arbitration it models.
	pinned bool
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.fn == nil }

// eventHeap is a binary min-heap ordered by (At, tie-break key). It
// implements the operations directly instead of going through
// container/heap to avoid the interface-call overhead on the simulator's
// hottest path.
//
// With salt == 0 (the default) the tie-break key is the scheduling
// sequence number, i.e. FIFO at equal time. With salt != 0 the key of an
// unpinned event is a splitmix64 mix of (salt, seq) — a seeded
// pseudo-random permutation of same-instant dispatch order — while
// pinned events keep their raw seq. The perturbation harness
// (cmd/reprocheck -perturb) uses this to detect tie-break races: results
// that depend on the arbitrary FIFO order of simultaneous events.
type eventHeap struct {
	items []*Event
	salt  uint64
}

func (h *eventHeap) len() int { return len(h.items) }

// tiebreakMix is the splitmix64 output function over salt ^ seq. It is a
// bijection on uint64 for a fixed salt, so distinct seqs keep distinct
// keys and the permuted order is total.
func tiebreakMix(salt, seq uint64) uint64 {
	z := (salt ^ seq) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// key returns the tie-break key used at equal At.
func (h *eventHeap) key(e *Event) uint64 {
	if h.salt == 0 || e.pinned {
		return e.seq
	}
	return tiebreakMix(h.salt, e.seq)
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if h.salt != 0 {
		if ka, kb := h.key(a), h.key(b); ka != kb {
			return ka < kb
		}
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(h.items)
	h.items = append(h.items, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	n := len(h.items) - 1
	h.swap(0, n)
	e := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	n := len(h.items) - 1
	if i != n {
		h.swap(i, n)
	}
	e := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if i != n && n > 0 {
		if !h.down(i) {
			h.up(i)
		}
	}
	e.index = -1
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the item at i down; it reports whether the item moved.
func (h *eventHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
	return i > start
}
