package sim

// Event is a handle to one scheduled callback occurrence. Handles are
// returned by Engine.Schedule and friends and are plain values: copying
// one copies the reference, and the zero Event references nothing.
//
// The engine recycles event storage through a free-list pool
// (EventPool), so a handle does not own its node — it carries the
// node's generation number from the moment it was scheduled. Every
// engine operation checks that generation first: a handle whose
// occurrence has fired or been cancelled (and whose node may since have
// been reused for an unrelated event) is *stale*, and stale handles are
// always detected — Cancel degrades to a no-op, Reschedule returns the
// zero Event, and the pool panics on any attempt to free the node
// twice. See DESIGN.md §2 "Event queue internals".
type Event struct {
	n   *eventNode
	gen uint64
}

// Valid reports whether the handle references an occurrence at all
// (pending, fired, or cancelled). The zero Event is not valid.
func (ev Event) Valid() bool { return ev.n != nil }

// Pending reports whether the occurrence is still queued: its node is
// live, on its original generation, and neither fired nor cancelled.
func (ev Event) Pending() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.state == nodePending
}

// Pinned reports whether a still-pending occurrence uses pinned
// same-instant arbitration (SchedulePinned/AfterPinned). It is false
// for the zero handle and for stale handles.
func (ev Event) Pinned() bool {
	return ev.Pending() && ev.n.pinned
}

// When returns the occurrence's fire time while it is pending, and
// NoTime for the zero handle or a stale one.
func (ev Event) When() Time {
	if !ev.Pending() {
		return NoTime
	}
	return ev.n.At
}

// nodeState tracks an eventNode through its pool lifecycle.
type nodeState uint8

const (
	// nodeFree: on the pool free list, owned by nobody.
	nodeFree nodeState = iota
	// nodePending: queued, waiting to fire.
	nodePending
	// nodeCancelled: still physically queued (cancellation is lazy) but
	// the callback will never run; the node is freed when the queue
	// reaches its position.
	nodeCancelled
)

func (s nodeState) String() string {
	switch s {
	case nodeFree:
		return "free"
	case nodePending:
		return "pending"
	default:
		return "cancelled"
	}
}

// eventNode is the pooled storage behind an Event handle.
type eventNode struct {
	// At is the virtual time the event fires.
	At Time
	// seq breaks ties between events scheduled for the same instant:
	// earlier-scheduled events fire first (FIFO at equal time) unless a
	// tie-break perturbation re-keys them.
	seq uint64
	// gen is the node's generation, bumped every time the node is
	// returned to the pool. A handle is live only while its captured
	// generation equals the node's.
	gen uint64
	// fn is the callback; nil once fired or cancelled.
	fn func()
	// state is the pool lifecycle state.
	state nodeState
	// pinned declares that this event's same-instant arbitration order
	// (FIFO) is part of the model, not an accident: under a tie-break
	// perturbation (Engine.PerturbTiebreaks) pinned events keep their
	// FIFO order among themselves while unpinned ties are permuted. The
	// few pinned sites in internal/kernel are the dynamic analogue of a
	// //simlint:allow directive — each one documents the hardware
	// arbitration it models.
	pinned bool
	// shard is the placement hint captured from Engine.SetShardHint at
	// schedule time. It routes the node to a sub-queue when the engine
	// runs on the sharded queue and is ignored everywhere else; it is
	// never part of eventOrder, so placement can never change dispatch
	// order.
	shard int32
	// tag is the event's registered kind plus its constructor arguments
	// (ScheduleTagged and friends). A tagged event can be serialised and
	// rebuilt across a snapshot/restore boundary; an untagged one (zero
	// tag) cannot, and Engine.SnapshotTo refuses it loudly. The tag is
	// never part of eventOrder.
	tag EventTag
}

// eventOrder is the total dispatch order every queue implementation
// must realise: (At, tie-break key, seq). seq is unique per engine, so
// the order is total — which is what makes the ladder queue and the
// reference heap produce bit-identical pop sequences (the differential
// harness in diffqueue_test.go enforces it mechanically).
//
// With salt == 0 (the default) the tie-break key is the scheduling
// sequence number, i.e. FIFO at equal time. With salt != 0 the key of an
// unpinned event is a splitmix64 mix of (salt, seq) — a seeded
// pseudo-random permutation of same-instant dispatch order — while
// pinned events keep their raw seq. The perturbation harness
// (cmd/reprocheck -perturb) uses this to detect tie-break races: results
// that depend on the arbitrary FIFO order of simultaneous events.
type eventOrder struct {
	salt uint64
}

// tiebreakMix is the splitmix64 output function over salt ^ seq. It is a
// bijection on uint64 for a fixed salt, so distinct seqs keep distinct
// keys and the permuted order is total.
func tiebreakMix(salt, seq uint64) uint64 {
	z := (salt ^ seq) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// key returns the tie-break key used at equal At.
func (o eventOrder) key(n *eventNode) uint64 {
	if o.salt == 0 || n.pinned {
		return n.seq
	}
	return tiebreakMix(o.salt, n.seq)
}

// less is the strict total dispatch order.
func (o eventOrder) less(a, b *eventNode) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if o.salt != 0 {
		if ka, kb := o.key(a), o.key(b); ka != kb {
			return ka < kb
		}
	}
	return a.seq < b.seq
}
