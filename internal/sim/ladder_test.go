package sim

import (
	"testing"
)

// ladderOf digs out the engine's ladder queue; tests using it assert
// implementation structure, not just behaviour.
func ladderOf(t *testing.T, e *Engine) *ladderQueue {
	t.Helper()
	lq, ok := e.q.(*ladderQueue)
	if !ok {
		t.Fatalf("engine queue is %T, want *ladderQueue", e.q)
	}
	return lq
}

// validateLadder runs the queue's own invariant audit and fails the
// test (instead of panicking) on the first violation.
func validateLadder(t *testing.T, e *Engine) {
	t.Helper()
	e.q.validate(func(msg string) { t.Fatalf("ladder invariant: %s", msg) })
}

func TestLadderFarOverflowRoundTrip(t *testing.T) {
	// Window is 256 slots of 2^16 ns ≈ 16.8 ms; schedule well past it so
	// events park in the far heap, then drain in global order. The queue
	// is pinned explicitly: these are ladder white-box tests and must not
	// follow the process default (CI's sharded leg flips it).
	e := NewEngineOpts(1, EngineOptions{Queue: QueueLadder})
	var fired []Time
	times := []Time{
		Time(40 * Millisecond), Time(5 * Microsecond), Time(90 * Millisecond),
		Time(17 * Millisecond), Time(200 * Millisecond), Time(16 * Millisecond),
	}
	for _, at := range times {
		at := at
		e.Schedule(at, func() { fired = append(fired, e.Now()) })
	}
	lq := ladderOf(t, e)
	if lq.far.len() == 0 {
		t.Fatal("no events reached the far heap; spread the schedule out further")
	}
	validateLadder(t, e)
	e.RunAll()
	want := []Time{Time(5 * Microsecond), Time(16 * Millisecond), Time(17 * Millisecond),
		Time(40 * Millisecond), Time(90 * Millisecond), Time(200 * Millisecond)}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestLadderWindowWrapLap(t *testing.T) {
	// A periodic timer stepping ~one slot per firing laps the circular
	// bucket array several times; order and invariants must hold
	// throughout. 1500 steps of 65 µs ≈ 96 ms ≈ 5.8 window laps.
	e := NewEngineOpts(1, EngineOptions{Queue: QueueLadder})
	const steps = 1500
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < steps {
			e.After(65*Microsecond, tick)
		}
		if count%100 == 0 {
			validateLadder(t, e)
		}
	}
	e.After(0, tick)
	e.RunAll()
	if count != steps {
		t.Fatalf("ticked %d times, want %d", count, steps)
	}
}

func TestLadderRewindAfterIdleRun(t *testing.T) {
	// Run(until) with only a far-future event peeks, which slides the
	// window to that event's slot. Scheduling behind the window start
	// afterwards must trigger a rewind, not a mis-ordered dispatch.
	e := NewEngineOpts(1, EngineOptions{Queue: QueueLadder})
	var fired []Time
	e.Schedule(Time(100*Millisecond), func() { fired = append(fired, e.Now()) })
	e.Run(Time(50 * Millisecond)) // idle advance; window slid to the 100ms slot
	lq := ladderOf(t, e)
	slotBefore := lq.slot
	e.Schedule(Time(60*Millisecond), func() { fired = append(fired, e.Now()) })
	if lq.slot >= slotBefore {
		t.Fatalf("schedule behind the window did not rewind: slot %d -> %d", slotBefore, lq.slot)
	}
	validateLadder(t, e)
	e.RunAll()
	want := []Time{Time(60 * Millisecond), Time(100 * Millisecond)}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

func TestLadderRewindPreservesPendingRun(t *testing.T) {
	// Force a rewind while a sorted run is partially drained: the run
	// remnant must survive the round trip through the far heap.
	e := NewEngine(1)
	var fired []Time
	rec := func() { fired = append(fired, e.Now()) }
	// Two events in one slot; the first callback idles the clock via a
	// nested bounded Run against a far event, then schedules between.
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(Time(100*Millisecond), rec)
		e.Run(Time(50 * Millisecond)) // drains the slot-mate, then idles; window far away
		e.Schedule(Time(60*Millisecond), rec)
	})
	e.Schedule(12, rec)
	e.RunAll()
	want := []Time{10, 12, Time(60 * Millisecond), Time(100 * Millisecond)}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	validateLadder(t, e)
}

func TestLadderSameInstantInsertDuringDrain(t *testing.T) {
	// Events scheduled for the current instant while its batch drains
	// must join the active run in tie-break position — under salts too.
	for salt := uint64(0); salt < 8; salt++ {
		e := NewEngine(1)
		e.PerturbTiebreaks(salt)
		fired := 0
		e.Schedule(5, func() {
			for i := 0; i < 24; i++ {
				e.Schedule(5, func() { fired++ })
			}
		})
		e.Schedule(5, func() { fired++ })
		e.RunAll()
		if fired != 25 {
			t.Fatalf("salt %d: fired %d same-instant events, want 25", salt, fired)
		}
		if e.Now() != 5 {
			t.Fatalf("salt %d: clock at %v after same-instant batch, want 5", salt, e.Now())
		}
	}
}

func TestLadderBucketStorageIsReused(t *testing.T) {
	// Steady-state churn must not regrow bucket or run storage: after a
	// warm-up lap the backing arrays are recycled (this is where the
	// zero-allocs-per-event benchmark numbers come from).
	e := NewEngine(1)
	for i := 0; i < 4096; i++ {
		e.After(Duration(i%64)*Microsecond, func() {})
		e.Step()
	}
	st := e.PoolStats()
	if st.Allocs > 128 {
		t.Fatalf("steady-state churn allocated %d nodes", st.Allocs)
	}
	validateLadder(t, e)
}

func TestLadderMatchesHeapOnKernelLikeCadence(t *testing.T) {
	// A miniature kernel cadence: a 10 ms jiffy tick, a 65 µs local
	// tick, jittered IRQ arrivals, and cancellations — replayed on both
	// implementations, compared fire-for-fire.
	run := func(kind QueueKind) []Time {
		e := NewEngineOpts(5, EngineOptions{Queue: kind})
		var fired []Time
		rng := NewRNG(11)
		var jiffy, local func()
		jiffy = func() {
			fired = append(fired, e.Now())
			if e.Now() < Time(80*Millisecond) {
				e.After(10*Millisecond, jiffy)
			}
		}
		local = func() {
			fired = append(fired, e.Now()+1)
			if e.Now() < Time(80*Millisecond) {
				e.After(65*Microsecond, local)
			}
		}
		e.After(0, jiffy)
		e.After(0, local)
		var irqs []Event
		for i := 0; i < 300; i++ {
			at := Time(rng.Uint64() % uint64(90*Millisecond))
			irqs = append(irqs, e.Schedule(at, func() { fired = append(fired, e.Now()+2) }))
		}
		for i := 0; i < len(irqs); i += 3 {
			e.Cancel(irqs[i])
		}
		e.RunAll()
		return fired
	}
	h, l := run(QueueHeap), run(QueueLadder)
	if len(h) != len(l) {
		t.Fatalf("heap fired %d, ladder fired %d", len(h), len(l))
	}
	for i := range h {
		if h[i] != l[i] {
			t.Fatalf("dispatch %d: heap %v, ladder %v", i, h[i], l[i])
		}
	}
}
