package sim

import "testing"

// Serial-vs-sharded differential oracle, queue level: the sharded queue
// at every shard count must realise the exact dispatch sequence of the
// reference heap — same clocks, same pending counts after every op,
// same full (slot, fire time) trace — for any op stream and any
// tie-break salt. diffRunSharded reuses the heap-vs-ladder lockstep
// machinery (diffqueue_test.go) with sharded machines at shard counts
// 1..4 all marching against one heap reference.

func diffRunSharded(t *testing.T, ops []byte, salt uint64, shardCounts ...int) {
	t.Helper()
	if len(ops) > 512 {
		ops = ops[:512]
	}
	ref := newDiffMachine(QueueHeap, salt)
	machines := make([]*diffMachine, len(shardCounts))
	for i, n := range shardCounts {
		machines[i] = newDiffMachineOpts(EngineOptions{
			Queue: QueueSharded, Shards: n, ShardLookahead: 50 * Microsecond,
		}, salt)
	}
	for i, op := range ops {
		ref.exec(op)
		for j, m := range machines {
			m.exec(op)
			if ref.e.Now() != m.e.Now() {
				t.Fatalf("op %d (%#x): clocks diverged: heap %v, sharded/%d %v",
					i, op, ref.e.Now(), shardCounts[j], m.e.Now())
			}
			if ref.e.Pending() != m.e.Pending() {
				t.Fatalf("op %d (%#x): pending diverged: heap %d, sharded/%d %d",
					i, op, ref.e.Pending(), shardCounts[j], m.e.Pending())
			}
		}
	}
	ref.e.RunAll()
	for j, m := range machines {
		m.e.RunAll()
		if ref.e.Fired() != m.e.Fired() {
			t.Fatalf("fired diverged: heap %d, sharded/%d %d", ref.e.Fired(), shardCounts[j], m.e.Fired())
		}
		if len(ref.fires) != len(m.fires) {
			t.Fatalf("trace length diverged: heap %d, sharded/%d %d",
				len(ref.fires), shardCounts[j], len(m.fires))
		}
		for i := range ref.fires {
			if ref.fires[i] != m.fires[i] {
				t.Fatalf("dispatch %d diverged: heap fired slot %d at %v, sharded/%d slot %d at %v",
					i, ref.fires[i].slot, ref.fires[i].at, shardCounts[j], m.fires[i].slot, m.fires[i].at)
			}
		}
	}
}

// FuzzShardedSchedule is the serial-vs-sharded fuzz oracle: arbitrary
// op streams (schedules near/far/pinned, same-instant bursts, cancels,
// reschedules, dispatch, idle runs — plus the shard-hint rotation every
// op applies) under arbitrary salts and shard counts, heap vs sharded
// in lockstep, failing on the first divergent pop. The seeded corpus
// (testdata/fuzz/FuzzShardedSchedule) pins the structurally interesting
// paths per shard count; CI's fuzz smoke extends from there.
func FuzzShardedSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0x08, 0x10, 0x18}, uint64(0), uint8(2))
	// Same-instant bursts across rotating shard hints, salted: the ties
	// land on different sub-queues and must still merge in key order.
	f.Add([]byte{0x23, 0x23, 0x23, 0x06}, uint64(0xdeadbeef), uint8(4))
	// Far-heap overflow inside each shard, then drain.
	f.Add([]byte{0xf9, 0xf1, 0xe9, 0x01, 0x1e}, uint64(3), uint8(3))
	// Idle run past queued slots then near schedule: every shard's
	// ladder takes the rewind path.
	f.Add([]byte{0xf9, 0xff, 0x00, 0x08, 0x1e}, uint64(0), uint8(4))
	// Cancel/reschedule churn: lazily-cancelled nodes drain through the
	// merge scan.
	f.Add([]byte{0x00, 0x04, 0x04, 0x0c, 0x05, 0x0d, 0x16}, uint64(42), uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, salt uint64, shards uint8) {
		diffRunSharded(t, ops, salt, 1+int(shards)%5)
	})
}

// TestShardedQueueScenarios replays the corpus-style scenarios against
// shard counts 1, 2, 3 and 4 at once, so plain `go test` covers the
// oracle without the fuzz engine.
func TestShardedQueueScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		ops  []byte
		salt uint64
	}{
		{"near_schedules", []byte{0x00, 0x08, 0x10, 0x18, 0x1e}, 0},
		{"equal_instant_pinned_mix", []byte{0x23, 0x2b, 0x23, 0x1a, 0x06}, 0xdeadbeef},
		{"far_overflow", []byte{0xf9, 0xf1, 0xe9, 0xd9, 0x01, 0x1e}, 3},
		{"rewind_after_idle_run", []byte{0xf9, 0xff, 0x00, 0x08, 0x1e}, 0},
		{"cancel_churn", []byte{0x00, 0x04, 0x04, 0x0c, 0x05, 0x0d, 0x16, 0x1e}, 42},
		{"kitchen_sink_salted", []byte{0x23, 0xf9, 0x0c, 0x2b, 0xff, 0x08, 0x05, 0x16, 0x1e, 0x23}, 0x5eed},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) { diffRunSharded(t, sc.ops, sc.salt, 1, 2, 3, 4) })
	}
}

// TestShardedQueueDenseRandomStream is the standing fuzz approximation:
// a long fixed-seed op stream against all shard counts, salted and not.
func TestShardedQueueDenseRandomStream(t *testing.T) {
	rng := NewRNG(0x5a4d)
	ops := make([]byte, 2000)
	for i := range ops {
		ops[i] = byte(rng.Uint64())
	}
	diffRunSharded(t, ops, 0, 1, 2, 3, 4)
	diffRunSharded(t, ops, 0x9e3779b9, 1, 2, 3, 4)
}

// shardTickBase is the reference scenario configuration for the
// ShardSet-level tests below.
func shardTickBase() ShardTickConfig {
	return ShardTickConfig{
		CPUs:      8,
		Shards:    1,
		Lookahead: 20 * Microsecond,
		Period:    5 * Microsecond,
		IPIEvery:  3,
		Seed:      0x7e57,
	}
}

func runShardTick(cfg ShardTickConfig, until Time) ShardTickResult {
	set, collect := NewShardTick(cfg)
	set.Run(until)
	return collect()
}

// TestShardSetShardCountInvariance is the ShardSet-level oracle: the
// shard-tick scenario's complete observable output — checksum, event
// counts, window count — is bit-identical for shard counts 1, 2, 4 (and
// a deliberately non-dividing 3).
func TestShardSetShardCountInvariance(t *testing.T) {
	until := Time(20 * Millisecond)
	want := runShardTick(shardTickBase(), until)
	if want.Ticks == 0 || want.IPIs == 0 {
		t.Fatalf("degenerate reference run: %+v", want)
	}
	if want.Events != want.Ticks+want.IPIs {
		t.Fatalf("events %d != ticks %d + ipis %d", want.Events, want.Ticks, want.IPIs)
	}
	for _, shards := range []int{2, 3, 4} {
		cfg := shardTickBase()
		cfg.Shards = shards
		if got := runShardTick(cfg, until); got != want {
			t.Errorf("shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestShardSetExecutorOrderInvariance runs the same scenario with a
// hostile executor — jobs in reverse order, then in an interleaved
// order — and requires the serial result. Lanes share nothing inside a
// window, so execution order must be unobservable; this is the
// single-threaded proof backing runner.RunSharded's concurrent
// executor (whose goroutine-level test lives in internal/runner).
func TestShardSetExecutorOrderInvariance(t *testing.T) {
	until := Time(20 * Millisecond)
	cfg := shardTickBase()
	cfg.Shards = 4
	want := runShardTick(cfg, until)

	execs := map[string]func([]func()){
		"reverse": func(jobs []func()) {
			for i := len(jobs) - 1; i >= 0; i-- {
				jobs[i]()
			}
		},
		"odds_then_evens": func(jobs []func()) {
			for i := 1; i < len(jobs); i += 2 {
				jobs[i]()
			}
			for i := 0; i < len(jobs); i += 2 {
				jobs[i]()
			}
		},
	}
	for name, exec := range execs {
		set, collect := NewShardTick(cfg)
		set.RunExec(until, exec)
		if got := collect(); got != want {
			t.Errorf("%s executor diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestShardSetPerturbationInvariance: the scenario is declared
// perturbation-invariant (same-instant effects commute), so every salt
// must reproduce the salt-0 result at every shard count.
func TestShardSetPerturbationInvariance(t *testing.T) {
	until := Time(10 * Millisecond)
	want := runShardTick(shardTickBase(), until)
	for _, shards := range []int{1, 2, 4} {
		for _, salt := range []uint64{1, 0xdeadbeef, 0x5eed} {
			cfg := shardTickBase()
			cfg.Shards = shards
			cfg.Salt = salt
			if got := runShardTick(cfg, until); got != want {
				t.Errorf("shards=%d salt=%#x diverged:\n got %+v\nwant %+v", shards, salt, got, want)
			}
		}
	}
}

// TestShardSetDegenerateLookahead: a non-positive lookahead (a machine
// with no cross-CPU latency floor) must fall back to one serially-run
// lane — same totals as a real serial run, no deadlock, no livelock —
// rather than attempt a zero-width window.
func TestShardSetDegenerateLookahead(t *testing.T) {
	for _, la := range []Duration{0, -Microsecond} {
		cfg := shardTickBase()
		cfg.Shards = 4
		cfg.Lookahead = la
		set, collect := NewShardTick(cfg)
		if set.Shards() != 1 {
			t.Fatalf("lookahead %v: got %d lanes, want 1 (serial fallback)", la, set.Shards())
		}
		set.Run(Time(5 * Millisecond))
		r := collect()
		if r.Ticks == 0 {
			t.Fatalf("lookahead %v: serial fallback ran no ticks", la)
		}
	}
}

// TestShardSetSendLookaheadViolation: a cross-lane send closer than the
// lookahead is the exact bug that would let parallel and serial
// schedules diverge, so Send refuses it loudly in every build (not just
// under simsan).
func TestShardSetSendLookaheadViolation(t *testing.T) {
	set := NewShardSet(2, 10*Microsecond, 1, EngineOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-lane send inside the lookahead did not panic")
		}
	}()
	set.Lane(0).Send(1, Time(5*Microsecond), 0, func() {})
}

// TestShardSetSharedPoolPanics: lanes may run on different goroutines,
// so a pool shared across lanes is an ownership bug caught at
// construction.
func TestShardSetSharedPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shared pool across lanes did not panic")
		}
	}()
	NewShardSet(2, 10*Microsecond, 1, EngineOptions{Pool: NewEventPool()})
}

// TestShardedQueueRoutesByHint checks the storage side of placement:
// hints (including negative and out-of-range ones) land nodes on the
// expected sub-queue, while pops still drain in global order.
func TestShardedQueueRoutesByHint(t *testing.T) {
	e := NewEngineOpts(1, EngineOptions{Queue: QueueSharded, Shards: 3})
	sq, ok := e.q.(*shardedQueue)
	if !ok {
		t.Fatalf("engine queue is %T, want *shardedQueue", e.q)
	}
	hints := []int{0, 1, 2, 3, -1, -5, 7}
	for i, h := range hints {
		e.SetShardHint(h)
		e.Schedule(Time(i+1)*Time(Microsecond), func() {})
	}
	counts := make([]int, 3)
	for i, s := range sq.shards {
		counts[i] = s.len()
	}
	// Euclidean modulo: 0,1,2,0,2,1,1 → shard 0: {0,3}, 1: {1,-5,7}, 2: {2,-1}.
	if counts[0] != 2 || counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("shard occupancy %v, want [2 3 2]", counts)
	}
	var last Time = -1
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock regressed to %v after %v", e.Now(), last)
		}
		last = e.Now()
	}
	if e.Fired() != uint64(len(hints)) {
		t.Fatalf("fired %d, want %d", e.Fired(), len(hints))
	}
}

// TestShardSetWindowsAdvance sanity-checks the window protocol itself:
// a multi-window run completes, counts windows, and every lane's clock
// lands exactly on until.
func TestShardSetWindowsAdvance(t *testing.T) {
	cfg := shardTickBase()
	cfg.Shards = 4
	set, _ := NewShardTick(cfg)
	until := Time(2 * Millisecond)
	if got := set.Run(until); got != until {
		t.Fatalf("Run returned %v, want %v", got, until)
	}
	if set.Windows() == 0 {
		t.Fatal("no lookahead windows completed")
	}
	for i := 0; i < set.Shards(); i++ {
		if now := set.Lane(i).Eng.Now(); now != until {
			t.Fatalf("lane %d clock %v, want %v", i, now, until)
		}
	}
}
