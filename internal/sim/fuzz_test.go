package sim

import "testing"

// FuzzEngineOps drives the engine with an arbitrary op sequence
// (schedule / cancel / reschedule / step) and checks the core invariants:
// no panic, time never regresses, every scheduled-and-not-cancelled event
// fires exactly once.
func FuzzEngineOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 9})
	f.Add([]byte{255, 0, 255, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := NewEngine(1)
		fired := 0
		expected := 0
		var live []Event
		for _, op := range ops {
			switch op % 4 {
			case 0: // schedule
				d := Duration(op) * Microsecond
				expected++
				live = append(live, e.After(d, func() { fired++ }))
			case 1: // cancel something
				if len(live) > 0 {
					ev := live[int(op)%len(live)]
					if ev.Pending() {
						e.Cancel(ev)
						expected--
					}
					live[int(op)%len(live)] = Event{}
				}
			case 2: // reschedule something
				if len(live) > 0 {
					i := int(op) % len(live)
					if live[i].Valid() {
						live[i] = e.Reschedule(live[i], e.Now().Add(Duration(op)*Microsecond))
					}
				}
			case 3: // step a few events
				last := e.Now()
				for j := 0; j < int(op%5); j++ {
					if !e.Step() {
						break
					}
					if e.Now() < last {
						t.Fatal("time went backwards")
					}
					last = e.Now()
				}
			}
		}
		e.RunAll()
		if fired != expected {
			t.Fatalf("fired %d, expected %d", fired, expected)
		}
	})
}
