package sim

import "fmt"

// eventQueue is the priority-queue contract behind the engine. All
// implementations must realise the same eventOrder total order — the
// differential harness (diffqueue_test.go) holds them to bit-identical
// pop sequences, and the golden figure hashes hold whole-system results
// to the same bar.
//
// Cancellation is lazy everywhere: the engine marks a node
// nodeCancelled and the queue physically drops it when it surfaces, so
// implementations never need random-access removal (the operation that
// forced index back-pointers onto the old heap).
type eventQueue interface {
	// push inserts a pending node. Nodes pushed while a batch at the
	// same instant is draining must still surface in eventOrder position.
	push(n *eventNode)
	// peek returns the minimum node without removing it, or nil when
	// empty. Cancelled nodes may surface; the engine skips and frees them.
	peek() *eventNode
	// pop removes and returns the minimum node, or nil when empty.
	pop() *eventNode
	// len is the number of physically queued nodes, including
	// lazily-cancelled ones.
	len() int
	// setSalt installs the tie-break salt. Only legal while empty
	// (Engine.PerturbTiebreaks enforces this).
	setSalt(salt uint64)
	// each visits every physically queued node, in no particular order.
	each(fn func(*eventNode))
	// validate checks implementation invariants, reporting the first
	// violation through fail. Wired to the simsan periodic check.
	validate(fail func(string))
}

// QueueKind selects an event-queue implementation.
type QueueKind string

const (
	// QueueLadder is the two-level ladder/calendar queue: O(1) amortised
	// push/pop inside a sliding near-future window, with a far-future
	// overflow heap. The default.
	QueueLadder QueueKind = "ladder"
	// QueueHeap is the reference binary min-heap. Kept as the
	// differential baseline and selectable for A/B runs
	// (rtsim -queue heap, kernel.Config.EventQueue).
	QueueHeap QueueKind = "heap"
)

// Valid reports whether k names a known implementation ("" means the
// package default).
func (k QueueKind) Valid() bool {
	return k == "" || k == QueueLadder || k == QueueHeap
}

// defaultQueueKind is the implementation behind engines that do not ask
// for one explicitly (EngineOptions.Queue == ""). It exists for
// whole-program A/B runs (rtsim -queue heap): set once at process
// startup before any engine is built, read only at engine construction
// — never from simulation callbacks, so it cannot influence a running
// model beyond which (order-identical) queue implementation serves it.
//
//simlint:allow globalstate startup-only A/B selector written before any engine exists; both kinds realise the identical dispatch order (FuzzDiffQueue), so no run can observe the value
var defaultQueueKind = QueueLadder

// SetDefaultQueueKind selects the queue implementation for engines
// created without an explicit EngineOptions.Queue. "" restores the
// package default (the ladder queue); unknown kinds panic. Call it only
// at startup, before any engine exists.
func SetDefaultQueueKind(k QueueKind) {
	if !k.Valid() {
		panic(fmt.Sprintf("sim: unknown queue kind %q", k))
	}
	if k == "" {
		k = QueueLadder
	}
	defaultQueueKind = k
}

// DefaultQueueKind reports the queue implementation engines get by
// default.
func DefaultQueueKind() QueueKind { return defaultQueueKind }

func newQueue(kind QueueKind) eventQueue {
	switch kind {
	case "":
		kind = defaultQueueKind
	case QueueLadder, QueueHeap:
	default:
		panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
	}
	if kind == QueueHeap {
		return newRefHeap()
	}
	return newLadderQueue()
}
