package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// eventQueue is the priority-queue contract behind the engine. All
// implementations must realise the same eventOrder total order — the
// differential harness (diffqueue_test.go) holds them to bit-identical
// pop sequences, and the golden figure hashes hold whole-system results
// to the same bar.
//
// Cancellation is lazy everywhere: the engine marks a node
// nodeCancelled and the queue physically drops it when it surfaces, so
// implementations never need random-access removal (the operation that
// forced index back-pointers onto the old heap).
type eventQueue interface {
	// push inserts a pending node. Nodes pushed while a batch at the
	// same instant is draining must still surface in eventOrder position.
	push(n *eventNode)
	// peek returns the minimum node without removing it, or nil when
	// empty. Cancelled nodes may surface; the engine skips and frees them.
	peek() *eventNode
	// pop removes and returns the minimum node, or nil when empty.
	pop() *eventNode
	// len is the number of physically queued nodes, including
	// lazily-cancelled ones.
	len() int
	// setSalt installs the tie-break salt. Only legal while empty
	// (Engine.PerturbTiebreaks enforces this).
	setSalt(salt uint64)
	// each visits every physically queued node, in no particular order.
	each(fn func(*eventNode))
	// validate checks implementation invariants, reporting the first
	// violation through fail. Wired to the simsan periodic check.
	validate(fail func(string))
}

// QueueKind selects an event-queue implementation.
type QueueKind string

const (
	// QueueLadder is the two-level ladder/calendar queue: O(1) amortised
	// push/pop inside a sliding near-future window, with a far-future
	// overflow heap. The default.
	QueueLadder QueueKind = "ladder"
	// QueueHeap is the reference binary min-heap. Kept as the
	// differential baseline and selectable for A/B runs
	// (rtsim -queue heap, kernel.Config.EventQueue).
	QueueHeap QueueKind = "heap"
	// QueueSharded partitions the queue into per-shard ladder queues
	// (one per simulated CPU or CPU group, routed by the engine's shard
	// hint) merged at pop time under the same eventOrder total order.
	// Pop sequences are bit-identical to the heap and the single ladder
	// — the differential harness and FuzzShardedSchedule hold it to that
	// — so like the other kinds it can never change a result. Selected
	// by rtsim/reprocheck -engine=sharded -shards=N or
	// kernel.Config.{EventQueue,EngineShards}.
	QueueSharded QueueKind = "sharded"
)

// Valid reports whether k names a known implementation ("" means the
// package default).
func (k QueueKind) Valid() bool {
	return k == "" || k == QueueLadder || k == QueueHeap || k == QueueSharded
}

// defaultQueueKind is the implementation behind engines that do not ask
// for one explicitly (EngineOptions.Queue == ""). It exists for
// whole-program A/B runs (rtsim -queue heap): set once at process
// startup before any engine is built, read only at engine construction
// — never from simulation callbacks, so it cannot influence a running
// model beyond which (order-identical) queue implementation serves it.
//
//simlint:allow globalstate startup-only A/B selector written before any engine exists; both kinds realise the identical dispatch order (FuzzDiffQueue), so no run can observe the value
var defaultQueueKind = QueueLadder

// SetDefaultQueueKind selects the queue implementation for engines
// created without an explicit EngineOptions.Queue. "" restores the
// package default (the ladder queue); unknown kinds panic. Call it only
// at startup, before any engine exists.
func SetDefaultQueueKind(k QueueKind) {
	if !k.Valid() {
		panic(fmt.Sprintf("sim: unknown queue kind %q", k))
	}
	if k == "" {
		k = QueueLadder
	}
	defaultQueueKind = k
}

// DefaultQueueKind reports the queue implementation engines get by
// default.
func DefaultQueueKind() QueueKind { return defaultQueueKind }

// defaultShardCount is the shard count behind engines that select the
// sharded queue without an explicit EngineOptions.Shards. Like
// defaultQueueKind it is a startup-only whole-program A/B selector
// (rtsim -engine=sharded -shards=N) read exclusively at engine
// construction.
//
//simlint:allow globalstate startup-only A/B selector written before any engine exists; every shard count realises the identical dispatch order (FuzzShardedSchedule), so no run can observe the value
var defaultShardCount = 4

// defaultEngineMode, when set via -ldflags "-X repro/internal/sim.defaultEngineMode=sharded:N",
// switches the package default engine to the sharded queue with N
// shards before any engine exists. It is how CI's sharded matrix leg
// runs the whole test suite — golden hashes included — on the sharded
// engine without touching any test.
//
//simlint:allow globalstate linker-injected startup constant, never written at runtime
var defaultEngineMode string

func init() {
	mode := defaultEngineMode
	if mode == "" {
		return
	}
	rest, ok := strings.CutPrefix(mode, "sharded")
	if !ok {
		panic(fmt.Sprintf("sim: unknown defaultEngineMode %q (want sharded[:N])", mode))
	}
	if n, found := strings.CutPrefix(rest, ":"); found {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			panic(fmt.Sprintf("sim: bad shard count in defaultEngineMode %q", mode))
		}
		SetDefaultShardCount(v)
	} else if rest != "" {
		panic(fmt.Sprintf("sim: unknown defaultEngineMode %q (want sharded[:N])", mode))
	}
	SetDefaultQueueKind(QueueSharded)
}

// SetDefaultShardCount selects the shard count for engines that pick
// the sharded queue without an explicit EngineOptions.Shards. Call it
// only at startup, before any engine exists; n must be at least 1.
func SetDefaultShardCount(n int) {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard count must be >= 1, got %d", n))
	}
	defaultShardCount = n
}

// DefaultShardCount reports the shard count sharded-queue engines get
// by default.
func DefaultShardCount() int { return defaultShardCount }

func newQueue(kind QueueKind, shards int, lookahead Duration) eventQueue {
	switch kind {
	case "":
		kind = defaultQueueKind
	case QueueLadder, QueueHeap, QueueSharded:
	default:
		panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
	}
	switch kind {
	case QueueHeap:
		return newRefHeap()
	case QueueSharded:
		if shards <= 0 {
			shards = defaultShardCount
		}
		return newShardedQueue(shards, lookahead)
	}
	return newLadderQueue()
}
