package sim

import (
	"testing"
)

// Differential harness: the reference binary heap (refHeap) and the
// ladder queue (ladderQueue) must produce word-for-word identical
// dispatch sequences for ANY operation stream — that equivalence is
// what lets the engine swap queue implementations without any golden
// hash moving. Two engines, one per implementation, execute the same
// interpreted op stream in lockstep; after every op the clocks and
// pending counts must agree, and at the end the full (slot, fire time)
// dispatch traces must be identical.
//
// Callbacks are a pure function of the slot number they were created
// with, so both machines generate the same nested work: some slots
// schedule children at the same instant (joining the live batch in
// tie-break order), some schedule delayed children, and some cancel an
// earlier handle mid-dispatch (the cancel-during-dispatch path of the
// Engine.Cancel contract).

// fireRec is one dispatched event in a machine's trace.
type fireRec struct {
	slot int
	at   Time
}

// diffMachine drives one engine through the interpreted op stream.
type diffMachine struct {
	e     *Engine
	live  []Event
	fires []fireRec
	slots int
}

func newDiffMachine(kind QueueKind, salt uint64) *diffMachine {
	return newDiffMachineOpts(EngineOptions{Queue: kind}, salt)
}

// newDiffMachineOpts is newDiffMachine for full engine options — the
// sharded oracle (shard_test.go) uses it to pit heap against sharded
// queues of every shard count.
func newDiffMachineOpts(opts EngineOptions, salt uint64) *diffMachine {
	m := &diffMachine{e: NewEngineOpts(7, opts)}
	if salt != 0 {
		m.e.PerturbTiebreaks(salt)
	}
	return m
}

// fn builds the callback for a new slot. Behaviour depends only on the
// slot number, so the two machines stay in lockstep.
func (m *diffMachine) fn(slot int) func() {
	return func() {
		m.fires = append(m.fires, fireRec{slot: slot, at: m.e.Now()})
		switch {
		case slot%5 == 3 && m.slots < 4096:
			// Same-instant child: joins the currently draining batch at
			// its tie-break position.
			m.schedule(m.e.Now(), slot%2 == 0)
		case slot%7 == 4 && m.slots < 4096:
			m.schedule(m.e.Now().Add(Duration(slot%11)*Microsecond), false)
		case slot%13 == 9 && len(m.live) > 0:
			// Cancel-during-dispatch: the target may be pending, already
			// fired, or this very event — all must be quiet no-ops or
			// real cancellations, identically on both machines.
			m.e.Cancel(m.live[slot%len(m.live)])
		}
	}
}

func (m *diffMachine) schedule(at Time, pinned bool) {
	slot := m.slots
	m.slots++
	var ev Event
	if pinned {
		ev = m.e.SchedulePinned(at, m.fn(slot))
	} else {
		ev = m.e.Schedule(at, m.fn(slot))
	}
	m.live = append(m.live, ev)
}

// exec interprets one op byte. Every op also rotates the engine's
// shard placement hint — a no-op for order on every queue kind (the
// contract the sharded machines in shard_test.go are held to), and the
// rotation spreads the sharded queue's nodes across all sub-queues.
func (m *diffMachine) exec(op byte) {
	arg := int(op >> 3)
	m.e.SetShardHint(int(op%16) - 4) // negative hints included
	switch op % 8 {
	case 0: // near-future schedule (same ladder slot or next few)
		m.schedule(m.e.Now().Add(Duration(arg)*Microsecond), false)
	case 1: // spread across many slots; arg ≥ 24 reaches the far heap
		m.schedule(m.e.Now().Add(Duration(arg)*700*Microsecond), false)
	case 2: // pinned ties at a handful of instants
		m.schedule(m.e.Now().Add(Duration(arg%4)*Microsecond), true)
	case 3: // same-instant burst: ties between pinned and unpinned
		for i := 0; i <= arg%5; i++ {
			m.schedule(m.e.Now(), i%2 == 1)
		}
	case 4: // cancel (double-cancels and stale handles included)
		if len(m.live) > 0 {
			m.e.Cancel(m.live[arg%len(m.live)])
		}
	case 5: // reschedule, preserving arbitration class
		if len(m.live) > 0 {
			i := arg % len(m.live)
			if ev := m.e.Reschedule(m.live[i], m.e.Now().Add(Duration(arg)*Microsecond)); ev.Valid() {
				m.live[i] = ev
			}
		}
	case 6: // dispatch a few events
		for i := 0; i < arg%4; i++ {
			if !m.e.Step() {
				break
			}
		}
	case 7: // bounded run; can advance the clock idly past queued slots,
		// which is what later forces the ladder's rewind path
		m.e.Run(m.e.Now().Add(Duration(arg) * 600 * Microsecond))
	}
}

// diffRun drives both machines and asserts lockstep equivalence.
func diffRun(t *testing.T, ops []byte, salt uint64) {
	t.Helper()
	h := newDiffMachine(QueueHeap, salt)
	l := newDiffMachine(QueueLadder, salt)
	for i, op := range ops {
		h.exec(op)
		l.exec(op)
		if h.e.Now() != l.e.Now() {
			t.Fatalf("op %d (%#x): clocks diverged: heap %v, ladder %v", i, op, h.e.Now(), l.e.Now())
		}
		if h.e.Pending() != l.e.Pending() {
			t.Fatalf("op %d (%#x): pending diverged: heap %d, ladder %d", i, op, h.e.Pending(), l.e.Pending())
		}
	}
	h.e.RunAll()
	l.e.RunAll()
	if h.e.Fired() != l.e.Fired() {
		t.Fatalf("fired diverged: heap %d, ladder %d", h.e.Fired(), l.e.Fired())
	}
	if h.e.Now() != l.e.Now() {
		t.Fatalf("final clocks diverged: heap %v, ladder %v", h.e.Now(), l.e.Now())
	}
	if len(h.fires) != len(l.fires) {
		t.Fatalf("trace length diverged: heap %d, ladder %d", len(h.fires), len(l.fires))
	}
	for i := range h.fires {
		if h.fires[i] != l.fires[i] {
			t.Fatalf("dispatch %d diverged: heap fired slot %d at %v, ladder slot %d at %v",
				i, h.fires[i].slot, h.fires[i].at, l.fires[i].slot, l.fires[i].at)
		}
	}
}

// FuzzDiffQueue is the differential fuzz target: arbitrary op streams
// under arbitrary tie-break salts, heap vs ladder, identical dispatch
// order required. The seeded corpus (testdata/fuzz/FuzzDiffQueue) pins
// the structurally interesting paths: equal-At pinned/unpinned mixes,
// far-heap overflow, the rewind after an idle Run, double-cancel and
// cancel-during-dispatch.
func FuzzDiffQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x08, 0x10, 0x18}, uint64(0))
	// Same-instant bursts (op 3) mixing pinned and unpinned, salted.
	f.Add([]byte{0x23, 0x23, 0x23, 0x06}, uint64(0xdeadbeef))
	// Far-heap overflow: large op-1 deltas, then drain.
	f.Add([]byte{0xf9, 0xf1, 0xe9, 0x01, 0x1e}, uint64(3))
	// Idle run past queued slots, then near schedule: the rewind path.
	f.Add([]byte{0xf9, 0xff, 0x00, 0x08, 0x1e}, uint64(0))
	// Cancel/reschedule churn, double-cancels included.
	f.Add([]byte{0x00, 0x04, 0x04, 0x0c, 0x05, 0x0d, 0x16}, uint64(42))
	f.Fuzz(func(t *testing.T, ops []byte, salt uint64) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		diffRun(t, ops, salt)
	})
}

// TestDiffQueueScenarios replays the corpus-style scenarios as plain
// tests so `go test` covers them without the fuzz engine.
func TestDiffQueueScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		ops  []byte
		salt uint64
	}{
		{"near_schedules", []byte{0x00, 0x08, 0x10, 0x18, 0x1e}, 0},
		{"equal_instant_pinned_mix", []byte{0x23, 0x2b, 0x23, 0x1a, 0x06}, 0xdeadbeef},
		{"far_overflow", []byte{0xf9, 0xf1, 0xe9, 0xd9, 0x01, 0x1e}, 3},
		{"rewind_after_idle_run", []byte{0xf9, 0xff, 0x00, 0x08, 0x1e}, 0},
		{"cancel_churn", []byte{0x00, 0x04, 0x04, 0x0c, 0x05, 0x0d, 0x16, 0x1e}, 42},
		{"kitchen_sink_salted", []byte{0x23, 0xf9, 0x0c, 0x2b, 0xff, 0x08, 0x05, 0x16, 0x1e, 0x23}, 0x5eed},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) { diffRun(t, sc.ops, sc.salt) })
	}
}

// TestDiffQueueSaltSweep pushes one dense op stream through a sweep of
// salts: every salt permutes ties differently, and heap and ladder must
// agree on every permutation.
func TestDiffQueueSaltSweep(t *testing.T) {
	ops := []byte{0x23, 0x00, 0x23, 0x08, 0x2b, 0x06, 0x23, 0x1e}
	for salt := uint64(0); salt < 16; salt++ {
		diffRun(t, ops, salt)
	}
}

// TestDiffQueueDenseRandomStream feeds a long RNG-generated stream
// (fixed seed) through the harness — a cheap standing approximation of
// a fuzz session inside the regular test suite.
func TestDiffQueueDenseRandomStream(t *testing.T) {
	rng := NewRNG(0xd1ff)
	ops := make([]byte, 2000)
	for i := range ops {
		ops[i] = byte(rng.Uint64())
	}
	diffRun(t, ops, 0)
	diffRun(t, ops, 0x9e3779b9)
}
