package sim

import (
	"testing"
)

// tieOrder schedules n same-instant events (pinned or not) under the
// given salt and returns the dispatch order as the original schedule
// indices.
func tieOrder(t *testing.T, n int, salt uint64, pinned bool) []int {
	t.Helper()
	e := NewEngine(1)
	e.PerturbTiebreaks(salt)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		fn := func() { order = append(order, i) }
		if pinned {
			e.SchedulePinned(5, fn)
		} else {
			e.Schedule(5, fn)
		}
	}
	e.RunAll()
	if len(order) != n {
		t.Fatalf("fired %d events, want %d", len(order), n)
	}
	return order
}

func isFIFO(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

func TestPerturbSaltZeroIsFIFO(t *testing.T) {
	if got := tieOrder(t, 16, 0, false); !isFIFO(got) {
		t.Fatalf("salt 0 order = %v, want FIFO", got)
	}
}

func TestPerturbPermutesUnpinnedTies(t *testing.T) {
	// The mix is a bijection, so every salt yields *a* permutation; the
	// point of the knob is that some salts yield a different one. All of
	// salts 1..8 reordering 16 ties back to FIFO would mean the
	// perturbation does nothing.
	permuted := false
	for salt := uint64(1); salt <= 8; salt++ {
		order := tieOrder(t, 16, salt, false)
		seen := map[int]bool{}
		for _, v := range order {
			if seen[v] {
				t.Fatalf("salt %d: index %d dispatched twice (order %v)", salt, v, order)
			}
			seen[v] = true
		}
		if !isFIFO(order) {
			permuted = true
		}
	}
	if !permuted {
		t.Fatal("no salt in 1..8 permuted same-instant dispatch order")
	}
}

func TestPerturbIsDeterministicPerSalt(t *testing.T) {
	a := tieOrder(t, 16, 0xdeadbeef, false)
	b := tieOrder(t, 16, 0xdeadbeef, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same salt gave different orders: %v vs %v", a, b)
		}
	}
}

func TestPerturbPinnedTiesStayFIFO(t *testing.T) {
	for salt := uint64(1); salt <= 8; salt++ {
		if got := tieOrder(t, 16, salt, true); !isFIFO(got) {
			t.Fatalf("salt %d: pinned order = %v, want FIFO", salt, got)
		}
	}
}

// Mixed pinned and unpinned events at one instant: the pinned events
// must keep their relative FIFO order among themselves regardless of
// where the perturbed unpinned events land between them.
func TestPerturbMixedTiesKeepPinnedSubsequence(t *testing.T) {
	for salt := uint64(1); salt <= 8; salt++ {
		e := NewEngine(1)
		e.PerturbTiebreaks(salt)
		var pinnedOrder []int
		for i := 0; i < 20; i++ {
			i := i
			if i%2 == 0 {
				e.SchedulePinned(5, func() { pinnedOrder = append(pinnedOrder, i) })
			} else {
				e.Schedule(5, func() {})
			}
		}
		e.RunAll()
		for j := 1; j < len(pinnedOrder); j++ {
			if pinnedOrder[j] < pinnedOrder[j-1] {
				t.Fatalf("salt %d: pinned events dispatched out of FIFO order: %v", salt, pinnedOrder)
			}
		}
	}
}

func TestPerturbKeepsTimeOrdering(t *testing.T) {
	// Perturbation only touches ties: events at distinct times still fire
	// in time order, and the virtual clock stays monotone.
	e := NewEngine(1)
	e.PerturbTiebreaks(0x5eed)
	last := Time(-1)
	for _, at := range []Time{30, 10, 10, 20, 20, 20, 10, 30} {
		e.Schedule(at, func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %v after %v", e.Now(), last)
			}
			last = e.Now()
		})
	}
	e.RunAll()
	if last != 30 {
		t.Fatalf("last event fired at %v, want 30", last)
	}
}

func TestPerturbAfterScheduleArmsPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("PerturbTiebreaks with queued events did not panic")
		}
	}()
	e.PerturbTiebreaks(1)
}

func TestReschedulePreservesPinned(t *testing.T) {
	e := NewEngine(1)
	ev := e.SchedulePinned(10, func() {})
	ev = e.Reschedule(ev, 20)
	if !ev.Valid() || !ev.Pinned() {
		t.Fatal("Reschedule dropped the pinned arbitration class")
	}
	ev2 := e.Schedule(10, func() {})
	ev2 = e.Reschedule(ev2, 20)
	if !ev2.Valid() || ev2.Pinned() {
		t.Fatal("Reschedule pinned an unpinned event")
	}
}

func TestAfterPinnedClampsNegative(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(50, func() {})
	e.Run(50)
	fired := false
	e.AfterPinned(-10, func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("AfterPinned with negative duration did not fire")
	}
}

func TestTiebreakMixIsInjectiveOnSmallRange(t *testing.T) {
	// The permutation is total only because the mix keeps distinct seqs
	// distinct; spot-check a contiguous seq range under a few salts.
	for _, salt := range []uint64{1, 2, 0xdeadbeef} {
		seen := map[uint64]uint64{}
		for seq := uint64(0); seq < 4096; seq++ {
			k := tiebreakMix(salt, seq)
			if prev, dup := seen[k]; dup {
				t.Fatalf("salt %#x: seqs %d and %d collide on key %#x", salt, prev, seq, k)
			}
			seen[k] = seq
		}
	}
}

// perturbedScheduleRun drives an engine from an op list and returns an
// order-independent fingerprint: the fire time of each op slot (parent
// and child), the total dispatch count, and the final clock. Callbacks
// only write to their own slot, so the fingerprint is identical under
// any same-instant dispatch order — which is exactly what the fuzz
// target below asserts for arbitrary salts.
func perturbedScheduleRun(ops []byte, salt uint64) ([]Time, uint64, Time) {
	e := NewEngine(7)
	e.PerturbTiebreaks(salt)
	times := make([]Time, 2*len(ops))
	for i := range times {
		times[i] = -1
	}
	for i, op := range ops {
		i, op := i, op
		at := Time(op&0x0f) * Time(Microsecond)
		if op&0x10 != 0 {
			e.SchedulePinned(at, func() { times[i] = e.Now() })
			continue
		}
		e.Schedule(at, func() {
			times[i] = e.Now()
			// A child event, possibly at the same instant (op>>5 == 0):
			// slot-keyed recording keeps it commutative with its siblings.
			e.After(Duration(op>>5)*Microsecond, func() {
				times[len(ops)+i] = e.Now()
			})
		})
	}
	end := e.RunAll()
	return times, e.Fired(), end
}

// FuzzPerturbedSchedule checks the perturbation's core soundness
// property: for a model with no tie-break races (every callback touches
// only its own state), any salt produces bit-identical results to FIFO.
// A failure here would mean PerturbTiebreaks itself injects
// nondeterminism — losing or reordering work rather than merely
// re-arbitrating ties — which would make every -perturb verdict
// meaningless.
func FuzzPerturbedSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, uint64(1))
	f.Add([]byte{0x01, 0x11, 0x01, 0x11, 0x01}, uint64(0xdeadbeef))
	f.Add([]byte{0xff, 0x0f, 0x2f, 0x4f, 0x8f, 0x0f}, uint64(42))
	f.Add([]byte{0x10, 0x30, 0x50, 0x00, 0x20}, uint64(0))
	f.Fuzz(func(t *testing.T, ops []byte, salt uint64) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		baseTimes, baseFired, baseEnd := perturbedScheduleRun(ops, 0)
		times, fired, end := perturbedScheduleRun(ops, salt)
		if fired != baseFired {
			t.Fatalf("salt %#x: fired %d events, FIFO fired %d", salt, fired, baseFired)
		}
		if end != baseEnd {
			t.Fatalf("salt %#x: final clock %v, FIFO ended at %v", salt, end, baseEnd)
		}
		for i := range times {
			if times[i] != baseTimes[i] {
				t.Fatalf("salt %#x: slot %d fired at %v, FIFO fired it at %v", salt, i, times[i], baseTimes[i])
			}
		}
	})
}
