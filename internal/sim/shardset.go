package sim

import "fmt"

// ShardSet is the conservative-parallel execution layer over the
// sharded engine: N lanes, each a full Engine owning one shard-confined
// partition of the model, advancing in lockstep lookahead windows with
// cross-lane events carried by mailboxes.
//
// The window protocol is classic conservative PDES specialised to a
// fixed lookahead L (the model's guaranteed minimum cross-lane event
// latency — for the kernel model, kernel.Config.Lookahead derives it
// from the cheapest cross-CPU interaction: idle-exit kick, wakeup,
// tick):
//
//  1. Deliver all buffered cross-lane messages (sorted into the
//     deterministic mailbox order, see sortMsgs).
//  2. Let tmin = the earliest pending event across all lanes. Every
//     event in [tmin, tmin+L) is causally independent across lanes: a
//     cross-lane message generated inside the window cannot arrive
//     before tmin+L, because Send enforces at >= now+L.
//  3. Run every lane to the window end — serially, or concurrently via
//     an injected executor (runner.RunSharded; this package is
//     single-threaded by decree of the nondeterminism linter, so the
//     goroutines live in internal/runner).
//  4. Barrier; repeat.
//
// Determinism does not come from the execution order of lanes — they
// share nothing while a window runs — but from three properties, each
// enforced rather than assumed:
//
//   - Lane confinement: a lane's engine, RNG, pool, and model state are
//     touched only by that lane's events. Sharing a pool across lanes
//     panics at construction.
//   - Lookahead discipline: Lane.Send panics (always, not just under
//     simsan) when a cross-lane event would arrive closer than the
//     lookahead — the exact violation that would make the parallel
//     schedule diverge from the serial one.
//   - Deterministic merge: buffered messages deliver in
//     (at, key, fromLane, fromSeq) order, so the destination lane's
//     scheduling sequence — and therefore its tie-break seqs — is
//     identical whatever order lanes produced the messages in.
//
// Window boundaries are pure functions of global event times, so runs
// with different worker counts (or none) produce bit-identical
// timelines; the shard_test.go invariance suite and the benchjson
// serial-vs-sharded entry both lean on that.
//
// A lookahead <= 0 (degenerate config: a machine whose cross-CPU
// latency floor is zero) cannot support a parallel window — NewShardSet
// falls back to a single lane executed serially, never a deadlocked or
// livelocked barrier. Table-driven tests in internal/kernel pin that.
type ShardSet struct {
	lanes     []*Lane
	lookahead Duration
	// mail is the cross-lane buffer, drained and delivered at window
	// edges; the slice is reused across windows.
	mail []shardMsg
	// windows counts completed lookahead windows, for diagnostics.
	windows uint64
}

// Lane is one shard of a ShardSet: a private engine plus the send-side
// of the mailbox. Model code running on a lane schedules local events
// directly on Eng and cross-lane events through Send.
type Lane struct {
	// Eng is the lane's private engine. Local (same-lane) scheduling
	// goes straight to it.
	Eng *Engine
	set *ShardSet
	id  int
	// sent counts this lane's outgoing messages; the per-message
	// sequence number makes the mailbox merge order total.
	sent uint64
	// out is the lane-private outgoing buffer, merged into set.mail at
	// the window barrier (never touched while other lanes run).
	out []shardMsg
}

// shardMsg is one buffered cross-lane event.
type shardMsg struct {
	at Time
	// key orders same-instant deliveries before lane/seq do; callers
	// use stable model identities (CPU IDs, entity IDs) so the order is
	// invariant under both lane count and worker count.
	key uint64
	// fromLane/fromSeq complete the total order and make the merge
	// deterministic even for duplicate keys.
	fromLane int
	fromSeq  uint64
	to       int
	fn       func()
}

// NewShardSet builds lanes with engines seeded from DeriveSeed(seed,
// lane) — the same splitmix64 stream-splitting discipline the
// replication runner uses — and the given engine options applied to
// every lane. A non-positive lookahead degrades to one serially-run
// lane. Sharing one pool across several lanes is an ownership bug
// (lanes may run on different goroutines) and panics.
func NewShardSet(shards int, lookahead Duration, seed uint64, opts EngineOptions) *ShardSet {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard set needs >= 1 lane, got %d", shards))
	}
	if lookahead <= 0 {
		// Degenerate model: no cross-lane latency floor, so no window is
		// safe. One lane, serial execution, Send becomes direct schedule.
		shards = 1
	}
	if opts.Pool != nil && shards > 1 {
		panic("sim: shard lanes cannot share an event pool")
	}
	s := &ShardSet{lookahead: lookahead}
	s.lanes = make([]*Lane, shards)
	for i := range s.lanes {
		s.lanes[i] = &Lane{
			Eng: NewEngineOpts(DeriveSeed(seed, uint64(i)), opts),
			set: s,
			id:  i,
		}
	}
	return s
}

// Shards reports the lane count.
func (s *ShardSet) Shards() int { return len(s.lanes) }

// Lookahead reports the cross-lane latency floor the set was built with.
func (s *ShardSet) Lookahead() Duration { return s.lookahead }

// Windows reports how many lookahead windows have completed.
func (s *ShardSet) Windows() uint64 { return s.windows }

// Lane returns lane i.
func (s *ShardSet) Lane(i int) *Lane { return s.lanes[i] }

// PerturbTiebreaks forwards the tie-break perturbation to every lane;
// like Engine.PerturbTiebreaks it must precede any scheduling.
func (s *ShardSet) PerturbTiebreaks(salt uint64) {
	for _, l := range s.lanes {
		l.Eng.PerturbTiebreaks(salt)
	}
}

// ID reports the lane's index within its set.
func (l *Lane) ID() int { return l.id }

// Send schedules fn at time at on lane to. Same-lane sends are plain
// schedules. Cross-lane sends must respect the lookahead — at least
// lookahead past the sender's clock — and are buffered until the next
// window barrier, where every lane's buffer merges into one
// deterministic delivery order keyed by (at, key, sender lane, send
// seq). key must be a stable model identity (CPU ID, entity ID): two
// logically distinct same-instant senders with the same key would fall
// back to lane/seq order, which is only lane-count-invariant when keys
// are unique.
func (l *Lane) Send(to int, at Time, key uint64, fn func()) {
	if to < 0 || to >= len(l.set.lanes) {
		panic(fmt.Sprintf("sim: send to lane %d of %d", to, len(l.set.lanes)))
	}
	if fn == nil {
		panic("sim: send nil callback")
	}
	if to == l.id {
		l.Eng.Schedule(at, fn)
		return
	}
	if l.set.lookahead > 0 && at < l.Eng.Now().Add(l.set.lookahead) {
		panic(fmt.Sprintf(
			"sim: cross-shard send from lane %d at %v for %v violates lookahead %v (earliest legal arrival %v)",
			l.id, l.Eng.Now(), at, l.set.lookahead, l.Eng.Now().Add(l.set.lookahead)))
	}
	l.out = append(l.out, shardMsg{at: at, key: key, fromLane: l.id, fromSeq: l.sent, to: to, fn: fn})
	l.sent++
}

// deliver merges every lane's outgoing buffer, sorts it into the
// deterministic delivery order, and schedules each message on its
// destination lane. Delivery in the past (a message whose at fell
// behind the destination clock) is a causality violation the window
// protocol exists to prevent, so Engine.Schedule's past-check doubles
// as the receiver-side audit.
func (s *ShardSet) deliver() {
	s.mail = s.mail[:0]
	for _, l := range s.lanes {
		s.mail = append(s.mail, l.out...)
		for i := range l.out {
			l.out[i].fn = nil
		}
		l.out = l.out[:0]
	}
	if len(s.mail) == 0 {
		return
	}
	sortMsgs(s.mail)
	for i := range s.mail {
		m := &s.mail[i]
		dst := s.lanes[m.to]
		// The destination engine stamps the event with its own shard
		// hint; deliveries belong to the destination lane.
		dst.Eng.SetShardHint(m.to)
		dst.Eng.Schedule(m.at, m.fn)
		m.fn = nil
	}
}

// msgLess is the total delivery order: (at, key, sender lane, sender
// seq). fromLane/fromSeq never tie between distinct messages, so the
// order is strict.
func msgLess(a, b *shardMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.fromLane != b.fromLane {
		return a.fromLane < b.fromLane
	}
	return a.fromSeq < b.fromSeq
}

// sortMsgs sorts messages by msgLess without allocating (insertion
// sort; window batches are small — one message per cross-lane
// interaction per window).
func sortMsgs(msgs []shardMsg) {
	for i := 1; i < len(msgs); i++ {
		m := msgs[i]
		j := i - 1
		for j >= 0 && msgLess(&m, &msgs[j]) {
			msgs[j+1] = msgs[j]
			j--
		}
		msgs[j+1] = m
	}
}

// nextWindow computes the next window [tmin, end] against until, after
// delivering pending mail. ok is false when nothing is pending at or
// before until.
func (s *ShardSet) nextWindow(until Time) (end Time, ok bool) {
	s.deliver()
	var tmin Time
	have := false
	for _, l := range s.lanes {
		if t, pending := l.Eng.NextEventTime(); pending && (!have || t < tmin) {
			tmin, have = t, true
		}
	}
	if !have || tmin > until {
		return 0, false
	}
	// Events in [tmin, tmin+lookahead) are causally independent across
	// lanes; Run's until is inclusive, hence the -1.
	end = tmin.Add(s.lookahead) - 1
	if end > until || s.lookahead <= 0 {
		end = until
	}
	return end, true
}

// Run advances every lane to until, serially. It is RunExec with the
// trivial executor and exists so single-threaded callers (tests, the
// serial leg of A/B runs) need no runner import.
func (s *ShardSet) Run(until Time) Time {
	return s.RunExec(until, func(jobs []func()) {
		for _, j := range jobs {
			j()
		}
	})
}

// RunExec advances every lane to until using exec to run one window's
// worth of per-lane jobs. exec must run every job exactly once and
// return only when all are done (the barrier); beyond that it is free
// to run them on any goroutines in any order — the jobs share nothing.
// runner.RunSharded supplies the concurrent executor.
//
// The returned time is until (all lanes' clocks land there).
func (s *ShardSet) RunExec(until Time, exec func(jobs []func())) Time {
	// Lane jobs are prebound closures reused every window: the per-window
	// hot path allocates nothing.
	jobs := make([]func(), len(s.lanes))
	ends := make([]Time, len(s.lanes))
	for i, l := range s.lanes {
		i, eng := i, l.Eng
		jobs[i] = func() { eng.Run(ends[i]) }
	}
	for {
		end, ok := s.nextWindow(until)
		if !ok {
			break
		}
		for i := range ends {
			ends[i] = end
		}
		exec(jobs)
		s.windows++
		for _, l := range s.lanes {
			if now := l.Eng.Now(); now > end {
				panic(fmt.Sprintf("sim: lane %d ran to %v, past window end %v", l.id, now, end))
			}
		}
	}
	// Drain the tail: mail scheduled in the final window, then advance
	// every clock to until exactly.
	s.deliver()
	for _, l := range s.lanes {
		l.Eng.Run(until)
	}
	return until
}
