package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEmitAndRecords(t *testing.T) {
	b := NewBuffer(10)
	b.Emit(100, 0, KindIRQEnter, "irq 8")
	b.Emit(200, 1, KindWakeup, "pid 42")
	recs := b.Records()
	if len(recs) != 2 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].At != 100 || recs[1].CPU != 1 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestRingWrap(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Emit(sim.Time(i), 0, KindUser, "")
	}
	recs := b.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	want := []sim.Time{2, 3, 4}
	for i, r := range recs {
		if r.At != want[i] {
			t.Fatalf("recs[%d].At = %v, want %v (chronological after wrap)", i, r.At, want[i])
		}
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d", b.Dropped())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emit(1, 0, KindUser, "x")
	b.Emitf(1, 0, KindUser, "x %d", 1)
	b.SetFilter(KindUser)
	if b.Records() != nil || b.Len() != 0 || b.Dropped() != 0 {
		t.Fatal("nil buffer should be inert")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(10)
	b.SetFilter(KindShield)
	b.Emit(1, 0, KindUser, "ignored")
	b.Emit(2, 0, KindShield, "kept")
	if b.Len() != 1 || b.Records()[0].Kind != KindShield {
		t.Fatalf("filter failed: %+v", b.Records())
	}
	b.SetFilter() // clear
	b.Emit(3, 0, KindUser, "now kept")
	if b.Len() != 2 {
		t.Fatal("clearing filter failed")
	}
}

func TestEmitf(t *testing.T) {
	b := NewBuffer(4)
	b.Emitf(5, 2, KindMigrate, "pid %d -> cpu%d", 7, 1)
	if got := b.Records()[0].Msg; got != "pid 7 -> cpu1" {
		t.Fatalf("Msg = %q", got)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{At: sim.Time(1500000), CPU: 1, Kind: KindIRQEnter, Msg: "irq 8"}
	s := r.String()
	for _, want := range []string{"cpu1", "irq-enter", "irq 8", "0.001500"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(4)
	b.Emit(1, 0, KindUser, "a")
	b.Emit(2, 0, KindUser, "b")
	d := b.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Fatalf("Dump = %q", d)
	}
}

func TestKindString(t *testing.T) {
	if KindSoftirq.String() != "softirq" {
		t.Fatalf("KindSoftirq = %q", KindSoftirq.String())
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown kind = %q", got)
	}
}
