package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEmitAndRecords(t *testing.T) {
	b := NewBuffer(10)
	b.IRQEnter(100, 0, 8, "rtc")
	b.Wakeup(200, 1, 42, "worker", 1)
	recs := b.Records()
	if len(recs) != 2 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].At != 100 || recs[0].Kind != KindIRQEnter || recs[1].CPU != 1 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("Seq = %d, %d", recs[0].Seq, recs[1].Seq)
	}
	if got := b.Format(recs[1]); got != "worker/42 -> cpu1" {
		t.Fatalf("Format = %q", got)
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.TimerTick(sim.Time(i), 0)
	}
	recs := b.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	want := []sim.Time{2, 3, 4}
	for i, r := range recs {
		if r.At != want[i] {
			t.Fatalf("recs[%d].At = %v, want %v (chronological after wrap)", i, r.At, want[i])
		}
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d", b.Dropped())
	}
	if b.DroppedOn(0) != 2 || b.DroppedOn(1) != 0 {
		t.Fatalf("DroppedOn = %d, %d", b.DroppedOn(0), b.DroppedOn(1))
	}
	// Per-CPU rings fill independently: CPU 1 has its own capacity.
	b.TimerTick(10, 1)
	if b.DroppedOn(1) != 0 || b.Len() != 4 {
		t.Fatalf("cpu1 ring should not share cpu0's capacity")
	}
}

func TestPerCPUMergeOrdering(t *testing.T) {
	b := NewBuffer(16)
	// Interleave emits across three rings (global, cpu0, cpu1); the
	// merged stream must come back in emit (sequence) order even though
	// each ring holds a non-contiguous subsequence.
	cpus := []int{1, 0, -1, 1, 1, 0, -1, 0}
	for i, cpu := range cpus {
		b.TimerTick(sim.Time(100+i), cpu)
	}
	recs := b.Records()
	if len(recs) != len(cpus) {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("recs[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
		if int(r.CPU) != cpus[i] || r.At != sim.Time(100+i) {
			t.Fatalf("recs[%d] = %+v, want cpu %d at %d", i, r, cpus[i], 100+i)
		}
	}
}

func TestAppendSinceCursor(t *testing.T) {
	b := NewBuffer(2) // tiny rings so the cursor sees overwrites
	for i := 0; i < 3; i++ {
		b.TimerTick(sim.Time(i), 0)
	}
	recs, lost := b.AppendSince(nil, 0)
	if len(recs) != 2 || lost != 1 {
		t.Fatalf("got %d recs, lost %d; want 2 recs, 1 lost", len(recs), lost)
	}
	cursor := recs[len(recs)-1].Seq
	b.TimerTick(10, 0)
	b.TimerTick(11, 1)
	recs, lost = b.AppendSince(recs[:0], cursor)
	if len(recs) != 2 || lost != 0 {
		t.Fatalf("after cursor: %d recs, lost %d", len(recs), lost)
	}
	if recs[0].At != 10 || recs[1].At != 11 {
		t.Fatalf("cursor records = %+v", recs)
	}
	// Nothing new: empty, no loss.
	recs, lost = b.AppendSince(recs[:0], b.Seq())
	if len(recs) != 0 || lost != 0 {
		t.Fatalf("idle cursor: %d recs, lost %d", len(recs), lost)
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.TimerTick(1, 0)
	b.IRQEnter(1, 0, 3, "nic")
	b.Switch(1, 0, 4, "task", 0)
	b.Emit(1, 0, KindUser, "x")
	b.Emitf(1, 0, KindUser, "x %d", 1)
	b.SetFilter(KindUser)
	if b.Records() != nil || b.Len() != 0 || b.Dropped() != 0 || b.Seq() != 0 {
		t.Fatal("nil buffer should be inert")
	}
	if b.Enabled(KindUser) {
		t.Fatal("nil buffer reports Enabled")
	}
	if b.Intern("x") != 0 || b.Name(1) != "" {
		t.Fatal("nil buffer interning should be inert")
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	b := NewBuffer(0)
	if b.Enabled(KindSwitch) {
		t.Fatal("zero-capacity buffer reports Enabled")
	}
	b.Switch(1, 0, 4, "task", 0)
	b.Emitf(1, 0, KindUser, "msg %d", 1)
	if b.Len() != 0 || b.Seq() != 0 {
		t.Fatal("zero-capacity buffer retained records")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(10)
	b.SetFilter(KindShield)
	b.TimerTick(1, 0)
	b.Shield(2, "procs", 0, 2)
	if b.Len() != 1 || b.Records()[0].Kind != KindShield {
		t.Fatalf("filter failed: %+v", b.Records())
	}
	// Filtered-out records don't consume sequence numbers.
	if b.Seq() != 1 {
		t.Fatalf("Seq = %d", b.Seq())
	}
	b.SetFilter() // clear
	b.TimerTick(3, 0)
	if b.Len() != 2 {
		t.Fatal("clearing filter failed")
	}
}

// formatSpy records whether fmt ever rendered it.
type formatSpy struct{ formatted *bool }

func (s formatSpy) String() string { *s.formatted = true; return "spy" }

func TestEmitfShortCircuits(t *testing.T) {
	// The legacy formatting path must not run Sprintf when the record
	// would be discarded: nil buffer, zero capacity, or filtered kind.
	var formatted bool
	spy := formatSpy{formatted: &formatted}

	var nilBuf *Buffer
	nilBuf.Emitf(1, 0, KindUser, "%s", spy)
	if formatted {
		t.Fatal("nil-buffer Emitf formatted its arguments")
	}
	disabled := NewBuffer(0)
	disabled.Emitf(1, 0, KindUser, "%s", spy)
	if formatted {
		t.Fatal("zero-capacity Emitf formatted its arguments")
	}
	filtered := NewBuffer(8)
	filtered.SetFilter(KindShield)
	filtered.Emitf(1, 0, KindUser, "%s", spy)
	if formatted {
		t.Fatal("filtered Emitf formatted its arguments")
	}
	// Control: a retaining buffer does format.
	live := NewBuffer(8)
	live.Emitf(1, 0, KindUser, "%s", spy)
	if !formatted {
		t.Fatal("live Emitf did not format")
	}
}

func TestEmitf(t *testing.T) {
	b := NewBuffer(4)
	b.Emitf(5, 2, KindMigrate, "pid %d -> cpu%d", 7, 1)
	if got := b.Format(b.Records()[0]); got != "pid 7 -> cpu1" {
		t.Fatalf("Format = %q", got)
	}
}

func TestDisabledTypedEmitZeroAlloc(t *testing.T) {
	// The tentpole contract: with tracing off, a typed tracepoint is a
	// nil check and nothing else.
	var b *Buffer
	if n := testing.AllocsPerRun(1000, func() {
		b.IRQEnter(1, 0, 5, "rcim")
		b.Switch(2, 0, 9, "rcim-response", 90)
		b.Migrate(3, 0, 9, "rcim-response", 0, 1)
		b.LockRelease(4, 0, "BKL", 100)
	}); n != 0 {
		t.Fatalf("disabled typed emit allocates %v/op", n)
	}
}

func TestEnabledSteadyStateZeroAlloc(t *testing.T) {
	// Once the ring and intern table are warm, emitting is copy-only.
	b := NewBuffer(64)
	b.IRQEnter(0, 0, 5, "rcim") // warm the ring and the name
	if n := testing.AllocsPerRun(1000, func() {
		b.IRQEnter(1, 0, 5, "rcim")
		b.IRQExit(2, 0, 5, "rcim")
	}); n != 0 {
		t.Fatalf("steady-state enabled emit allocates %v/op", n)
	}
}

func TestInterning(t *testing.T) {
	b := NewBuffer(8)
	id := b.Intern("dcache")
	if id == 0 || b.Intern("dcache") != id {
		t.Fatalf("interning not stable: %d vs %d", id, b.Intern("dcache"))
	}
	if b.Name(id) != "dcache" {
		t.Fatalf("Name = %q", b.Name(id))
	}
	if b.Intern("") != 0 || b.Name(0) != "" {
		t.Fatal("empty string must map to id 0")
	}
	if b.Name(999) != "" {
		t.Fatal("out-of-range id must render empty")
	}
}

func TestFormatAndLine(t *testing.T) {
	b := NewBuffer(16)
	b.IRQEnter(sim.Time(1500000), 1, 8, "rtc")
	b.LockRelease(2, 0, "BKL", 250)
	b.Shield(3, "procs", 0, 2)
	b.Migrate(4, 0, 12, "stress", 0, -1)
	recs := b.Records()
	line := b.Line(recs[0])
	for _, want := range []string{"cpu1", "irq-enter", "irq 8 (rtc)", "0.001500"} {
		if !strings.Contains(line, want) {
			t.Fatalf("Line() = %q missing %q", line, want)
		}
	}
	if got := b.Format(recs[1]); got != "released BKL held 250ns" {
		t.Fatalf("lock-release Format = %q", got)
	}
	if got := b.Format(recs[2]); got != "procs 0x0 -> 0x2" {
		t.Fatalf("shield Format = %q", got)
	}
	if got := b.Format(recs[3]); got != "stress/12 off cpu0" {
		t.Fatalf("migrate Format = %q", got)
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(4)
	b.TimerTick(1, 0)
	b.TimerTick(2, 0)
	d := b.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Fatalf("Dump = %q", d)
	}
}

func TestKindString(t *testing.T) {
	if KindSoftirqEnter.String() != "softirq-enter" {
		t.Fatalf("KindSoftirqEnter = %q", KindSoftirqEnter.String())
	}
	if KindLockRelease.String() != "lock-release" {
		t.Fatalf("KindLockRelease = %q", KindLockRelease.String())
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown kind = %q", got)
	}
}
