package attrib

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func sumOf(b [NumCauses]sim.Duration) sim.Duration {
	var s sim.Duration
	for _, d := range b {
		s += d
	}
	return s
}

// TestAttributeShieldedResponse walks the canonical shielded sample:
// delivery, handler, wakeup inside the handler, dispatch, run.
func TestAttributeShieldedResponse(t *testing.T) {
	b := trace.NewBuffer(64)
	b.IRQRaise(1000, 1, 5, "rcim", 1)
	b.IRQEnter(1200, 1, 5, "rcim")
	b.Wakeup(2000, 1, 9, "rcim-response", 1)
	b.IRQExit(2200, 1, 5, "rcim")
	b.Switch(3000, 1, 9, "rcim-response", 90)
	got, eps, migrations := Attribute(b.Records(), 1000, 5000, 1, 9)
	want := [NumCauses]sim.Duration{}
	want[CauseIRQOff] = 1200 // delivery wait + handler
	want[CauseSched] = 800   // irq-exit to switch
	want[CauseRun] = 2000    // the task itself
	if got != want {
		t.Fatalf("breakdown = %v, want %v", got, want)
	}
	if migrations != 0 {
		t.Fatalf("migrations = %d", migrations)
	}
	if sumOf(got) != 4000 {
		t.Fatalf("breakdown sums to %v, want window length 4000", sumOf(got))
	}
	// Episodes: the 200ns delivery wait is split from the 1000ns handler
	// frame by the IRQEnter record; the wakeup inside the handler does
	// not split it.
	if eps[CauseIRQOff] != 1000 || eps[CauseSched] != 800 || eps[CauseRun] != 2000 {
		t.Fatalf("episodes = %v", eps)
	}
}

// TestAttributeEpisodes: back-to-back ISR frames accumulate in the
// per-sample share but each frame is its own episode, split at the
// enter/exit records — the contract the static latbound envelope
// (worst single region) is checked against.
func TestAttributeEpisodes(t *testing.T) {
	b := trace.NewBuffer(64)
	b.IRQEnter(100, 0, 3, "nic")
	b.IRQExit(700, 0, 3, "nic")
	b.IRQEnter(700, 0, 4, "disk")
	b.IRQExit(1600, 0, 4, "disk")
	b.SoftirqEnter(1600, 0, 500)
	b.IRQEnter(1800, 0, 3, "nic") // nests over the pass
	b.IRQExit(2100, 0, 3, "nic")
	b.SoftirqExit(2400, 0, 500)
	got, eps, _ := Attribute(b.Records(), 0, 2400, 0, 9)
	if got[CauseIRQOff] != 1900 || got[CauseSoftirq] != 500 {
		t.Fatalf("breakdown = %v", got)
	}
	// Worst irq-off episode is the 900ns disk frame, not the 1900ns
	// sample share; the softirq pass is sliced to 200+300 by the nested
	// ISR.
	if eps[CauseIRQOff] != 900 {
		t.Fatalf("irq-off episode = %v, want 900", eps[CauseIRQOff])
	}
	if eps[CauseSoftirq] != 300 {
		t.Fatalf("softirq episode = %v, want 300", eps[CauseSoftirq])
	}
}

// TestAttributeSoftirqAndLock covers bottom-half and spin charging.
func TestAttributeSoftirqAndLock(t *testing.T) {
	b := trace.NewBuffer(64)
	b.SoftirqEnter(100, 0, 300)
	b.SoftirqExit(400, 0, 300)
	b.LockContend(500, 0, "dcache", 1)
	b.LockAcquire(650, 0, "dcache", 150)
	b.Wakeup(650, 0, 7, "realfeel", 0)
	b.Switch(700, 0, 7, "realfeel", 90)
	got, _, _ := Attribute(b.Records(), 0, 1000, 0, 7)
	want := [NumCauses]sim.Duration{}
	want[CauseIRQOff] = 200 // [0,100) delivery + [400,500) quiet
	want[CauseSoftirq] = 300
	want[CauseLock] = 150
	want[CauseSched] = 50
	want[CauseRun] = 300
	if got != want {
		t.Fatalf("breakdown = %v, want %v", got, want)
	}
}

// TestAttributePreWindowState: activity entered before the window must
// still be charged inside it (records before start update state).
func TestAttributePreWindowState(t *testing.T) {
	b := trace.NewBuffer(64)
	b.SoftirqEnter(50, 0, 250)
	b.SoftirqExit(300, 0, 250)
	got, _, _ := Attribute(b.Records(), 100, 400, 0, 7)
	if got[CauseSoftirq] != 200 {
		t.Fatalf("softirq charge = %v, want 200 (in-flight pass)", got[CauseSoftirq])
	}
	if sumOf(got) != 300 {
		t.Fatalf("breakdown sums to %v, want 300", sumOf(got))
	}
}

// TestAttributeMigration follows the sample across a CPU move.
func TestAttributeMigration(t *testing.T) {
	b := trace.NewBuffer(64)
	b.Wakeup(100, 0, 7, "task", 0)
	b.Migrate(300, 0, 7, "task", 0, -1)
	b.Wakeup(450, 1, 7, "task", 1)
	b.Switch(600, 1, 7, "task", 90)
	got, _, migrations := Attribute(b.Records(), 0, 1000, 0, 7)
	if migrations != 1 {
		t.Fatalf("migrations = %d", migrations)
	}
	want := [NumCauses]sim.Duration{}
	want[CauseIRQOff] = 100
	want[CauseSched] = 200 + 150 // wake→migrate, re-wake→switch
	want[CauseMigrate] = 150     // migrate→re-wake
	want[CauseRun] = 400
	if got != want {
		t.Fatalf("breakdown = %v, want %v", got, want)
	}
}

// TestAttributePartition: whatever the event mix, the breakdown is an
// exact partition of the window.
func TestAttributePartition(t *testing.T) {
	b := trace.NewBuffer(256)
	at := sim.Time(0)
	step := func(d sim.Duration) sim.Time { at = at.Add(d); return at }
	for i := 0; i < 20; i++ {
		b.IRQEnter(step(137), 1, 3, "nic")
		b.SoftirqEnter(step(59), 1, 100)
		b.SoftirqExit(step(100), 1, 100)
		b.IRQExit(step(71), 1, 3, "nic")
		b.Wakeup(step(13), 1, 9, "t", 1)
		b.Switch(step(211), 1, 9, "t", 50)
		b.Preempt(step(97), 1, 9, "t", false)
	}
	for _, win := range []struct{ s, e sim.Time }{
		{0, at}, {100, 5000}, {3000, 3001}, {at, at.Add(500)},
	} {
		got, _, _ := Attribute(b.Records(), win.s, win.e, 1, 9)
		if sumOf(got) != win.e.Sub(win.s) {
			t.Fatalf("window [%d,%d]: breakdown sums to %v, want %v",
				win.s, win.e, sumOf(got), win.e.Sub(win.s))
		}
	}
}

// TestSummaryMergeLaw checks the metrics merge contract: empty
// identity, associativity, exact sums, and first-wins on MaxLatency
// ties (index order).
func TestSummaryMergeLaw(t *testing.T) {
	mk := func(lat sim.Duration, run, sched sim.Duration) Summary {
		var s Summary
		var b [NumCauses]sim.Duration
		b[CauseRun] = run
		b[CauseSched] = sched
		s.add(lat, b, b, 0)
		return s
	}
	a := mk(100, 60, 40)
	bs := mk(300, 200, 100)
	c := mk(200, 150, 50)

	// Identity.
	id := a
	id.Merge(Summary{})
	if id != a {
		t.Fatal("merging the zero summary changed the receiver")
	}
	zero := Summary{}
	zero.Merge(a)
	if zero != a {
		t.Fatal("zero.Merge(a) != a")
	}

	// Associativity: (a+b)+c == a+(b+c).
	left := a
	left.Merge(bs)
	left.Merge(c)
	bc := bs
	bc.Merge(c)
	right := a
	right.Merge(bc)
	if left != right {
		t.Fatalf("merge not associative:\n%+v\n%+v", left, right)
	}
	if left.Samples != 3 || left.TotalLatency != 600 || left.MaxLatency != 300 {
		t.Fatalf("merged sums wrong: %+v", left)
	}
	if left.WorstBreakdown[CauseRun] != 200 {
		t.Fatalf("worst breakdown should follow MaxLatency: %+v", left.WorstBreakdown)
	}

	// Ties keep the receiver's breakdown (index order stability).
	t1 := mk(300, 300, 0)
	t2 := mk(300, 0, 300)
	m := t1
	m.Merge(t2)
	if m.WorstBreakdown != t1.WorstBreakdown {
		t.Fatalf("tie must keep first breakdown: %+v", m.WorstBreakdown)
	}
}

// TestAttributorCursorAndLoss: the incremental reader sees each record
// once and accounts overwritten ones.
func TestAttributorCursorAndLoss(t *testing.T) {
	b := trace.NewBuffer(4)
	a := New(b, 9)
	b.Wakeup(100, 0, 9, "t", 0)
	b.Switch(200, 0, 9, "t", 50)
	a.Sample(0, 1000, 0)
	s := a.Summary()
	if s.Samples != 1 || s.LostRecords != 0 {
		t.Fatalf("first sample: %+v", s)
	}
	if s.Total[CauseRun] != 800 || s.Total[CauseSched] != 100 || s.Total[CauseIRQOff] != 100 {
		t.Fatalf("first sample breakdown: %+v", s.Total)
	}
	// Overflow the ring between samples: 10 emits into capacity 4.
	for i := 0; i < 10; i++ {
		b.TimerTick(sim.Time(1000+i), 0)
	}
	a.Sample(1000, 2000, 0)
	s = a.Summary()
	if s.Samples != 2 || s.LostRecords != 6 {
		t.Fatalf("after overflow: samples %d, lost %d", s.Samples, s.LostRecords)
	}
	if s.TotalLatency != 2000 || sumOf(s.Total) != s.TotalLatency {
		t.Fatalf("totals must stay an exact partition: %+v", s)
	}
}
