// Package attrib turns the typed trace stream into a latency
// attribution: for each response sample it walks the records bracketing
// the sample's window and charges every nanosecond of the delay to a
// cause — interrupt handling / interrupt-off time, softirq processing,
// spinlock spin, scheduling/preemption wait, or cross-CPU migration —
// reproducing the paper's "causes of delay" decomposition from the
// trace itself.
//
// The per-sample breakdown is an exact partition: the charged causes
// always sum to the sample's latency. Summaries are mergeable under the
// same law as metrics.JitterSummary (empty identity; commutative,
// associative, exact-integer fields), so attribution survives the
// parallel replication engine's index-ordered merge bit-for-bit.
package attrib

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Cause is one bucket of the latency decomposition.
type Cause uint8

// Causes, in severity order for reporting.
const (
	// CauseIRQOff is time spent in (or waiting behind) hardware
	// interrupt handlers, including the delivery of the measured
	// interrupt itself.
	CauseIRQOff Cause = iota
	// CauseSoftirq is bottom-half processing delaying the sample.
	CauseSoftirq
	// CauseLock is spinlock spin time on the sample's CPU.
	CauseLock
	// CauseSched is time runnable but waiting for dispatch (scheduling
	// latency, preemption by other activity, switch overhead).
	CauseSched
	// CauseMigrate is time spent being moved between CPUs.
	CauseMigrate
	// CauseRun is the measured task's own execution (handler body and
	// syscall return path) — the irreducible part of the response.
	CauseRun
	NumCauses
)

var causeNames = [NumCauses]string{
	"irq-off", "softirq", "spinlock", "sched", "migration", "run",
}

// String names the cause.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Summary aggregates per-sample attributions. The zero value is the
// merge identity. All fields are exact integers (counts and nanosecond
// sums/maxima), so Merge is commutative and associative bit-for-bit —
// the same contract as metrics.JitterSummary, which makes a Summary
// safe to fold across replications in runner index order.
type Summary struct {
	// Samples is the number of attributed response samples.
	Samples uint64
	// Migrations counts migration records seen inside sample windows.
	Migrations uint64
	// LostRecords counts trace records overwritten before the
	// attributor could read them (ring overflow between samples).
	LostRecords uint64

	// TotalLatency and MaxLatency aggregate the attributed samples'
	// end-to-end latencies.
	TotalLatency sim.Duration
	MaxLatency   sim.Duration

	// Total is the per-cause sum over all samples; summed over causes
	// it equals TotalLatency exactly.
	Total [NumCauses]sim.Duration
	// Worst is the per-cause maximum over samples (each cause's worst
	// single-sample share, not necessarily from the same sample).
	Worst [NumCauses]sim.Duration
	// WorstBreakdown is the full decomposition of the MaxLatency
	// sample; it sums to MaxLatency exactly.
	WorstBreakdown [NumCauses]sim.Duration
	// WorstEpisode is the per-cause maximum over contiguous same-cause
	// episodes. An episode ends when the charged cause changes and is
	// force-split at every IRQ/softirq/lock-grant trace record, so each
	// one lies inside a single kernel region — the quantity simlint's
	// static latbound envelope bounds per region.
	WorstEpisode [NumCauses]sim.Duration
}

// add folds one attributed sample into the summary.
func (s *Summary) add(lat sim.Duration, breakdown, episodes [NumCauses]sim.Duration, migrations uint64) {
	s.Samples++
	s.Migrations += migrations
	s.TotalLatency += lat
	for c := Cause(0); c < NumCauses; c++ {
		s.Total[c] += breakdown[c]
		if breakdown[c] > s.Worst[c] {
			s.Worst[c] = breakdown[c]
		}
		if episodes[c] > s.WorstEpisode[c] {
			s.WorstEpisode[c] = episodes[c]
		}
	}
	if lat > s.MaxLatency {
		s.MaxLatency = lat
		s.WorstBreakdown = breakdown
	}
}

// Merge folds o into s. Sums add, maxima take the larger value, and the
// worst-sample breakdown follows the strictly greater MaxLatency — on a
// tie the receiver (lower merge index) wins, which is what makes the
// fold order-stable for the replication engine.
func (s *Summary) Merge(o Summary) {
	s.Samples += o.Samples
	s.Migrations += o.Migrations
	s.LostRecords += o.LostRecords
	s.TotalLatency += o.TotalLatency
	for c := Cause(0); c < NumCauses; c++ {
		s.Total[c] += o.Total[c]
		if o.Worst[c] > s.Worst[c] {
			s.Worst[c] = o.Worst[c]
		}
		if o.WorstEpisode[c] > s.WorstEpisode[c] {
			s.WorstEpisode[c] = o.WorstEpisode[c]
		}
	}
	if o.MaxLatency > s.MaxLatency {
		s.MaxLatency = o.MaxLatency
		s.WorstBreakdown = o.WorstBreakdown
	}
}

// taskKind reports whether the record's A argument is a pid.
func taskKind(k trace.Kind) bool {
	switch k {
	case trace.KindSwitch, trace.KindPreempt, trace.KindWakeup,
		trace.KindMigrate, trace.KindSyscallEnter, trace.KindSyscallExit:
		return true
	}
	return false
}

// attrState is the sweep state while walking a window's records.
type attrState struct {
	cpu       int // the CPU whose activity delays the sample right now
	isr       int // hardware-interrupt nesting depth on cpu
	soft      int // softirq nesting depth on cpu (0 or 1 in practice)
	spinning  bool
	running   bool // the measured task is executing
	woken     bool // the measured task is runnable, waiting for dispatch
	migrating bool
}

// cause resolves the sweep state to the charged cause, in stack order:
// what is literally on top of the CPU (interrupt work, bottom halves,
// lock spin) outranks the task states below it. A window that has seen
// no events yet is waiting for interrupt delivery, which is CauseIRQOff.
func (st *attrState) cause() Cause {
	switch {
	case st.isr > 0:
		return CauseIRQOff
	case st.soft > 0:
		return CauseSoftirq
	case st.spinning:
		return CauseLock
	case st.running:
		return CauseRun
	case st.migrating:
		return CauseMigrate
	case st.woken:
		return CauseSched
	default:
		return CauseIRQOff
	}
}

// moveTo retargets the sweep to a different CPU. The per-CPU stack
// state (isr/softirq/spin) belonged to the old CPU and is unknown on
// the new one, so it resets; the task-centric flags survive.
func (st *attrState) moveTo(cpu int) {
	if cpu == st.cpu {
		return
	}
	st.cpu = cpu
	st.isr = 0
	st.soft = 0
	st.spinning = false
}

// Attribute walks recs (in sequence order) and partitions the window
// [start, end] of the sample that completed for task pid into causes.
// cpu is the CPU on which the sample's interrupt is delivered. Records
// before start still update state, so activity entered before the
// window (an in-flight softirq pass, say) is charged correctly inside
// it. The returned breakdown sums to end-start exactly.
//
// episodes is the per-cause maximum over contiguous same-cause spans.
// A span ends when the cause changes, and is additionally force-split
// at every IRQ enter/exit, softirq enter/exit, and lock-acquire record
// on the sweep CPU: under that splitting every irq-off episode lies
// inside one ISR frame slice or one interrupts-disabled segment run,
// every softirq episode inside one budgeted pass, and every spinlock
// episode inside one acquisition wait — the regions simlint's latbound
// analyzer bounds statically.
func Attribute(recs []trace.Record, start, end sim.Time, cpu, pid int) (breakdown, episodes [NumCauses]sim.Duration, migrations uint64) {
	if end <= start {
		return
	}
	st := attrState{cpu: cpu}
	segStart := start
	epCause := Cause(0)
	var epLen sim.Duration
	// split closes the open episode against the per-cause maximum.
	split := func() {
		if epLen > episodes[epCause] {
			episodes[epCause] = epLen
		}
		epLen = 0
	}
	// charge closes the open segment [segStart, t) against the current
	// state's cause.
	charge := func(t sim.Time) {
		if t > end {
			t = end
		}
		if t > segStart {
			c := st.cause()
			d := t.Sub(segStart)
			breakdown[c] += d
			if c != epCause {
				split()
				epCause = c
			}
			epLen += d
			segStart = t
		}
	}
	for _, r := range recs {
		forTask := taskKind(r.Kind) && int(r.A) == pid
		if int(r.CPU) != st.cpu && !forTask {
			continue
		}
		if r.At >= end {
			break
		}
		charge(r.At)
		switch r.Kind {
		case trace.KindIRQEnter, trace.KindIRQExit,
			trace.KindSoftirqEnter, trace.KindSoftirqExit,
			trace.KindLockAcquire:
			if int(r.CPU) == st.cpu {
				split()
			}
		}
		switch r.Kind {
		case trace.KindIRQEnter:
			st.isr++
		case trace.KindIRQExit:
			if st.isr > 0 {
				st.isr--
			}
		case trace.KindSoftirqEnter:
			st.soft++
		case trace.KindSoftirqExit:
			if st.soft > 0 {
				st.soft--
			}
		case trace.KindLockContend:
			st.spinning = true
		case trace.KindLockAcquire:
			st.spinning = false
		case trace.KindWakeup:
			if forTask {
				st.woken = true
				st.migrating = false
				st.moveTo(int(r.C))
			}
		case trace.KindSwitch:
			if forTask {
				st.moveTo(int(r.CPU))
				st.running = true
				st.woken = false
				st.migrating = false
			} else if st.running {
				// Someone else switched in on our CPU without a
				// preempt record: the task is no longer running.
				st.running = false
				st.woken = true
			}
		case trace.KindPreempt:
			if forTask {
				st.running = false
				st.woken = true
			}
		case trace.KindMigrate:
			if forTask {
				if r.At >= start {
					migrations++
				}
				st.migrating = true
				st.running = false
			}
		}
	}
	charge(end)
	split()
	return breakdown, episodes, migrations
}

// Attributor drains a trace buffer incrementally and accumulates a
// Summary, one Sample call per response measurement. It keeps a cursor
// into the record stream, so each record is read once, and reuses its
// scratch slice, so steady-state sampling does not allocate.
type Attributor struct {
	buf     *trace.Buffer
	pid     int
	cursor  uint64
	scratch []trace.Record
	sum     Summary
}

// New returns an attributor reading buf for task pid's samples. The
// cursor starts at the buffer's current position: records emitted
// before New are outside the first window and are skipped.
func New(buf *trace.Buffer, pid int) *Attributor {
	return &Attributor{buf: buf, pid: pid, cursor: buf.Seq()}
}

// Sample attributes one response measurement spanning [start, end] on
// cpu (where the measured interrupt is delivered) and folds it into the
// summary.
func (a *Attributor) Sample(start, end sim.Time, cpu int) {
	var lost uint64
	a.scratch, lost = a.buf.AppendSince(a.scratch[:0], a.cursor)
	a.cursor = a.buf.Seq()
	a.sum.LostRecords += lost
	breakdown, episodes, migrations := Attribute(a.scratch, start, end, cpu, a.pid)
	a.sum.add(end.Sub(start), breakdown, episodes, migrations)
}

// Summary returns the accumulated attribution.
func (a *Attributor) Summary() Summary { return a.sum }
