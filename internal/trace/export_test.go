package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

var updateExport = flag.Bool("update", false, "rewrite the Chrome trace golden file")

// exportFixture builds a small deterministic trace exercising every
// event shape the exporter distinguishes: spans (irq, softirq, lock
// spin) and instants.
func exportFixture() *Buffer {
	b := NewBuffer(32)
	b.IRQRaise(1000, 1, 5, "rcim", 1)
	b.IRQEnter(1100, 1, 5, "rcim")
	b.Wakeup(2000, 1, 9, "rcim-response", 1)
	b.IRQExit(2500, 1, 5, "rcim")
	b.SoftirqEnter(2600, 0, 4000)
	b.SoftirqExit(6600, 0, 4000)
	b.Switch(7000, 1, 9, "rcim-response", 90)
	b.LockContend(8000, 0, "BKL", 1)
	b.LockAcquire(9500, 0, "BKL", 1500)
	b.LockRelease(9900, 0, "BKL", 400)
	b.Shield(10000, "procs", 0, 2)
	return b
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.json")
	if *updateExport {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace JSON drifted from golden (run with -update to regenerate)\ngot:\n%s", buf.String())
	}
}

// TestChromeTraceShape validates the export against the trace-event
// format contract: a traceEvents array whose entries carry name/ph/ts/
// pid/tid, phases limited to B/E/i, begin/end balance per track, and
// nondecreasing timestamps (sequence order).
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Ph    string         `json:"ph"`
			Ts    *float64       `json:"ts"`
			Pid   *int           `json:"pid"`
			Tid   *int           `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	open := map[string]int{} // "tid/name" -> depth
	lastTs := -1.0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		if *ev.Ts < lastTs {
			t.Fatalf("event %d ts %v before %v: stream not in order", i, *ev.Ts, lastTs)
		}
		lastTs = *ev.Ts
		key := strings.Join([]string{string(rune('0' + *ev.Tid + 1)), ev.Name}, "/")
		switch ev.Ph {
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				t.Fatalf("event %d: E without matching B for %s", i, key)
			}
		case "i":
			if ev.Scope == "" {
				t.Fatalf("event %d: instant without scope", i)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Args["detail"] == nil {
			t.Fatalf("event %d: no detail arg", i)
		}
	}
	for key, depth := range open {
		if depth != 0 {
			t.Fatalf("unbalanced span %s (depth %d)", key, depth)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuffer(8)
	b.IRQEnter(sim.Time(1500), 0, 3, "nic")
	b.IRQExit(sim.Time(2500), 0, 3, "nic")
	if err := b.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "irq-enter") || !strings.Contains(lines[0], "nic") {
		t.Fatalf("line = %q", lines[0])
	}
}
