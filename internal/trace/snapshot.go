package trace

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Section is the trace buffer's section name in a snapshot image.
const Section = "trace.buffer"

// Snapshot serialises the buffer — intern table, filter, and every
// per-CPU ring with its cursor — so a restored run renders the exact
// trace stream the snapshotted one would have, drops included.
func (b *Buffer) Snapshot(w *snapshot.Writer) {
	w.Begin(Section)
	w.U64(1, uint64(b.perCPU))
	w.U64(2, b.seq)
	w.Bool(3, b.filtered)
	var filterBits uint64
	for k, on := range b.filter {
		if on {
			filterBits |= 1 << uint(k)
		}
	}
	w.U64(4, filterBits)
	w.U64(5, uint64(len(b.names)))
	for i, name := range b.names {
		if i == 0 {
			continue // names[0] is the empty-string sentinel
		}
		w.Str(6, name)
	}
	w.U64(7, uint64(len(b.rings)))
	for i := range b.rings {
		rg := &b.rings[i]
		w.U64(8, uint64(len(rg.recs)))
		w.U64(9, uint64(rg.next))
		w.Bool(10, rg.wrapped)
		w.U64(11, rg.dropped)
		for _, r := range rg.recs {
			w.U64(12, r.Seq)
			w.I64(13, int64(r.At))
			w.U64(14, uint64(r.Kind))
			w.I64(15, int64(r.CPU))
			w.I64(16, int64(r.A))
			w.I64(17, int64(r.B))
			w.I64(18, int64(r.C))
			w.I64(19, int64(r.D))
			w.I64(20, int64(r.Msg))
		}
	}
	w.End()
}

// Restore overwrites the buffer from a snapshot image. The buffer must
// have been constructed with the same per-CPU capacity as the one that
// wrote the image (construction determinism, as everywhere in restore).
func (b *Buffer) Restore(r *snapshot.Reader) error {
	r.Section(Section)
	perCPU := int(r.U64(1))
	if perCPU != b.perCPU {
		return fmt.Errorf("trace: restore: image ring capacity %d, buffer has %d", perCPU, b.perCPU)
	}
	b.seq = r.U64(2)
	b.filtered = r.Bool(3)
	filterBits := r.U64(4)
	b.filter = [numKinds]bool{}
	for k := range b.filter {
		b.filter[k] = filterBits&(1<<uint(k)) != 0
	}
	nNames := int(r.U64(5))
	b.names = nil
	b.nameIDs = nil
	if nNames > 0 {
		b.names = make([]string, 1, nNames)
		b.nameIDs = make(map[string]NameID, nNames)
		for i := 1; i < nNames; i++ {
			name := r.Str(6)
			b.names = append(b.names, name)
			b.nameIDs[name] = NameID(i)
		}
	}
	nRings := int(r.U64(7))
	b.rings = make([]ring, nRings)
	for i := 0; i < nRings; i++ {
		rg := &b.rings[i]
		nRecs := int(r.U64(8))
		rg.next = int(r.U64(9))
		rg.wrapped = r.Bool(10)
		rg.dropped = r.U64(11)
		if nRecs > 0 {
			rg.recs = make([]Record, 0, b.perCPU)
		}
		for j := 0; j < nRecs; j++ {
			rg.recs = append(rg.recs, Record{
				Seq:  r.U64(12),
				At:   sim.Time(r.I64(13)),
				Kind: Kind(r.U64(14)),
				CPU:  int32(r.I64(15)),
				A:    int32(r.I64(16)),
				B:    int32(r.I64(17)),
				C:    int32(r.I64(18)),
				D:    int32(r.I64(19)),
				Msg:  NameID(r.I64(20)),
			})
		}
	}
	r.EndSection()
	return r.Err()
}

func init() {
	snapshot.RegisterState(Buffer{}, snapshot.Manifest{
		"perCPU":   "codec", // validated against the restoring buffer's construction
		"seq":      "codec",
		"filtered": "codec",
		"filter":   "codec", // packed as a bitmask
		"rings":    "codec",
		"names":    "codec",
		"nameIDs":  "skip: inverse index of names; rebuilt while reading the intern table back",
	})
	snapshot.RegisterState(ring{}, snapshot.Manifest{
		"recs":    "codec",
		"next":    "codec",
		"wrapped": "codec",
		"dropped": "codec",
	})
	snapshot.RegisterState(Record{}, snapshot.Manifest{
		"Seq":  "codec",
		"At":   "codec",
		"Kind": "codec",
		"CPU":  "codec",
		"A":    "codec",
		"B":    "codec",
		"C":    "codec",
		"D":    "codec",
		"Msg":  "codec",
	})
}
