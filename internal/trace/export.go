package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file renders a buffer for external consumers: Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing) and the dmesg-style
// text Dump produces. Both walk the merged record stream in sequence
// order, so the output is a deterministic function of the trace.

// chromeEvent is one entry of the trace-event format's traceEvents
// array. Ts is in microseconds, per the format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeFor maps one record to a trace-event entry. Paired kinds
// become duration begin/end events so interrupt handlers, bottom-half
// passes and lock spins show up as spans on their CPU's track;
// everything else is a thread-scoped instant.
func (b *Buffer) chromeFor(r Record) chromeEvent {
	ev := chromeEvent{
		Ts:  float64(r.At) / 1e3,
		Pid: 0,
		Tid: int(r.CPU),
		Cat: r.Kind.String(),
		Args: map[string]any{
			"detail": b.Format(r),
			"seq":    r.Seq,
		},
	}
	switch r.Kind {
	case KindIRQEnter:
		ev.Ph, ev.Name = "B", "irq:"+b.Name(NameID(r.B))
	case KindIRQExit:
		ev.Ph, ev.Name = "E", "irq:"+b.Name(NameID(r.B))
	case KindSoftirqEnter:
		ev.Ph, ev.Name = "B", "softirq"
	case KindSoftirqExit:
		ev.Ph, ev.Name = "E", "softirq"
	case KindLockContend:
		ev.Ph, ev.Name = "B", "spin:"+b.Name(NameID(r.A))
	case KindLockAcquire:
		ev.Ph, ev.Name = "E", "spin:"+b.Name(NameID(r.A))
	default:
		ev.Ph, ev.Name, ev.Scope = "i", r.Kind.String(), "t"
	}
	return ev
}

// WriteChromeTrace serializes the retained records as Chrome
// trace-event JSON (the "JSON Object Format"), loadable in Perfetto.
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	recs := b.Records()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(recs)),
		DisplayTimeUnit: "ns",
	}
	for _, r := range recs {
		out.TraceEvents = append(out.TraceEvents, b.chromeFor(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteText serializes the retained records as dmesg-style lines, one
// record per line (the same rendering as Dump).
func (b *Buffer) WriteText(w io.Writer) error {
	for _, r := range b.Records() {
		if _, err := fmt.Fprintln(w, b.Line(r)); err != nil {
			return err
		}
	}
	return nil
}
