// Package trace is the simulator's typed tracepoint layer, the moral
// equivalent of the kernel's trace ring. The kernel model emits
// fixed-size typed records — a kind plus small integer arguments (pid,
// irq line, lock id, priority, target CPU) — into per-CPU ring buffers.
// Nothing is formatted at emit time: records are rendered to strings
// lazily, only when a reader asks, and task/lock/irq names are interned
// into a table so a record is four ints and a timestamp.
//
// A nil *Buffer is valid and inert, so the kernel hot paths carry
// tracing at the cost of a nil check: the disabled path performs no
// formatting and no allocation (bench_test.go proves 0 allocs/op).
//
// Records carry a global sequence number assigned at emit. The
// simulator is single-threaded, so sequence order is chronological and
// is the deterministic merge order across the per-CPU rings.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds emitted by the kernel model.
const (
	KindIRQRaise Kind = iota
	KindIRQEnter
	KindIRQExit
	KindSoftirqEnter
	KindSoftirqExit
	KindSwitch
	KindPreempt
	KindWakeup
	KindMigrate
	KindSyscallEnter
	KindSyscallExit
	KindLockContend
	KindLockAcquire
	KindLockRelease
	KindShield
	KindTimerTick
	KindTimerExpire
	KindUser
	numKinds
)

var kindNames = [numKinds]string{
	"irq-raise", "irq-enter", "irq-exit", "softirq-enter", "softirq-exit",
	"switch", "preempt", "wakeup", "migrate", "sys-enter", "sys-exit",
	"lock-contend", "lock-acquire", "lock-release", "shield", "tick",
	"timer-expire", "user",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NameID indexes the buffer's interning table. 0 is the empty string.
type NameID int32

// Record is one fixed-size trace entry. The meaning of A..D depends on
// Kind:
//
//	irq-raise     A=irq num  B=name      C=target cpu
//	irq-enter     A=irq num  B=name
//	irq-exit      A=irq num  B=name
//	softirq-enter A=work ns
//	softirq-exit  A=ran ns
//	switch        A=pid      B=name      C=prio
//	preempt       A=pid      B=name      C=1 at an action boundary
//	wakeup        A=pid      B=name      C=target cpu
//	migrate       A=pid      B=name      C=from cpu   D=to cpu (-1 unknown)
//	sys-enter     A=pid      B=task name C=call name
//	sys-exit      A=pid      B=task name C=call name
//	lock-contend  A=lock     B=holder cpu
//	lock-acquire  A=lock     B=spin ns
//	lock-release  A=lock     B=hold ns
//	shield        A=dim name B=old mask  C=new mask (low 32 bits)
//	tick          (none)
//	timer-expire  A=count    B=jiffies (low 32 bits)
//
// Name-valued fields hold NameIDs into the owning buffer's intern
// table. Msg is non-zero only for records emitted through the legacy
// string API (Emit/Emitf); Format then renders the interned message
// instead of the typed arguments.
type Record struct {
	Seq  uint64
	At   sim.Time
	Kind Kind
	CPU  int32
	A    int32
	B    int32
	C    int32
	D    int32
	Msg  NameID
}

// ring is one per-CPU record ring: fixed capacity, overwrite-oldest.
type ring struct {
	recs    []Record
	next    int
	wrapped bool
	dropped uint64
}

func (rg *ring) put(r Record, capacity int) {
	if rg.recs == nil {
		//simlint:allow hotalloc one-time ring arming on first record; the ring then recycles in place
		rg.recs = make([]Record, 0, capacity)
	}
	if len(rg.recs) < cap(rg.recs) {
		//simlint:allow hotalloc fills preallocated ring capacity; never grows past it
		rg.recs = append(rg.recs, r)
		return
	}
	rg.recs[rg.next] = r
	rg.next = (rg.next + 1) % len(rg.recs)
	rg.wrapped = true
	rg.dropped++
}

// Buffer holds per-CPU rings of typed Records plus the name-interning
// table they index. A nil *Buffer is valid and discards everything;
// so is a zero-capacity one.
type Buffer struct {
	perCPU   int
	seq      uint64
	filtered bool
	filter   [numKinds]bool
	// rings[0] is the global (cpu = -1) ring; rings[i+1] is CPU i's.
	rings []ring

	names   []string
	nameIDs map[string]NameID
}

// NewBuffer returns a buffer whose per-CPU rings hold at most capacity
// records each. capacity <= 0 yields a disabled buffer that records
// nothing (but is still safe to emit into).
func NewBuffer(capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	return &Buffer{perCPU: capacity}
}

// SetFilter restricts recording to the given kinds. Passing none clears
// the filter.
func (b *Buffer) SetFilter(kinds ...Kind) {
	if b == nil {
		return
	}
	b.filter = [numKinds]bool{}
	b.filtered = len(kinds) > 0
	for _, k := range kinds {
		b.filter[k] = true
	}
}

// Enabled reports whether a record of this kind would be retained. This
// is the zero-cost fast path: nil buffer, zero capacity and filtered
// kinds all answer false before any argument is materialized.
func (b *Buffer) Enabled(k Kind) bool {
	return b != nil && b.perCPU > 0 && (!b.filtered || b.filter[k])
}

// Intern returns the id for s, adding it to the table on first use.
// Steady-state interning of an already-seen name allocates nothing.
func (b *Buffer) Intern(s string) NameID {
	if b == nil || s == "" {
		return 0
	}
	if id, ok := b.nameIDs[s]; ok {
		return id
	}
	if b.nameIDs == nil {
		//simlint:allow hotalloc intern table built once on first name; steady state is a map hit
		b.nameIDs = make(map[string]NameID)
	}
	if len(b.names) == 0 {
		//simlint:allow hotalloc intern table seeding happens once per buffer
		b.names = append(b.names, "")
	}
	id := NameID(len(b.names))
	//simlint:allow hotalloc interning allocates once per distinct name, not per event
	b.names = append(b.names, s)
	b.nameIDs[s] = id
	return id
}

// Name resolves an interned id back to its string.
func (b *Buffer) Name(id NameID) string {
	if b == nil || id <= 0 || int(id) >= len(b.names) {
		return ""
	}
	return b.names[id]
}

// emit assigns the next sequence number and stores r in its CPU's ring.
// Callers must have checked Enabled.
//
//simlint:hotpath
func (b *Buffer) emit(r Record) {
	b.seq++
	r.Seq = b.seq
	idx := int(r.CPU) + 1
	if idx < 0 {
		idx = 0
	}
	for len(b.rings) <= idx {
		//simlint:allow hotalloc per-CPU ring table grows to the max CPU index once, then stays
		b.rings = append(b.rings, ring{})
	}
	b.rings[idx].put(r, b.perCPU)
}

// clampNS stores a duration as int32 nanoseconds (saturating); record
// args are 32-bit and no single traced section approaches 2s.
func clampNS(d sim.Duration) int32 {
	if d < 0 {
		return 0
	}
	if d > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(d)
}

// --- typed emitters (the kernel hot-path API) ---

// IRQRaise records an interrupt occurrence being routed to target.
//
//simlint:hotpath
func (b *Buffer) IRQRaise(at sim.Time, cpu, line int, name string, target int) {
	if !b.Enabled(KindIRQRaise) {
		return
	}
	b.emit(Record{At: at, Kind: KindIRQRaise, CPU: int32(cpu),
		A: int32(line), B: int32(b.Intern(name)), C: int32(target)})
}

// IRQEnter records a hardware interrupt handler starting.
//
//simlint:hotpath
func (b *Buffer) IRQEnter(at sim.Time, cpu, line int, name string) {
	if !b.Enabled(KindIRQEnter) {
		return
	}
	b.emit(Record{At: at, Kind: KindIRQEnter, CPU: int32(cpu),
		A: int32(line), B: int32(b.Intern(name))})
}

// IRQExit records a hardware interrupt handler completing.
//
//simlint:hotpath
func (b *Buffer) IRQExit(at sim.Time, cpu, line int, name string) {
	if !b.Enabled(KindIRQExit) {
		return
	}
	b.emit(Record{At: at, Kind: KindIRQExit, CPU: int32(cpu),
		A: int32(line), B: int32(b.Intern(name))})
}

// SoftirqEnter records a bottom-half pass starting with `work` queued.
//
//simlint:hotpath
func (b *Buffer) SoftirqEnter(at sim.Time, cpu int, work sim.Duration) {
	if !b.Enabled(KindSoftirqEnter) {
		return
	}
	b.emit(Record{At: at, Kind: KindSoftirqEnter, CPU: int32(cpu), A: clampNS(work)})
}

// SoftirqExit records a bottom-half pass completing after `ran`.
//
//simlint:hotpath
func (b *Buffer) SoftirqExit(at sim.Time, cpu int, ran sim.Duration) {
	if !b.Enabled(KindSoftirqExit) {
		return
	}
	b.emit(Record{At: at, Kind: KindSoftirqExit, CPU: int32(cpu), A: clampNS(ran)})
}

// Switch records a task being context-switched onto cpu.
//
//simlint:hotpath
func (b *Buffer) Switch(at sim.Time, cpu, pid int, name string, prio int) {
	if !b.Enabled(KindSwitch) {
		return
	}
	b.emit(Record{At: at, Kind: KindSwitch, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(name)), C: int32(prio)})
}

// Preempt records a task being descheduled in favor of a higher-
// priority one. boundary marks a preemption at an action/segment
// boundary rather than mid-frame.
//
//simlint:hotpath
func (b *Buffer) Preempt(at sim.Time, cpu, pid int, name string, boundary bool) {
	if !b.Enabled(KindPreempt) {
		return
	}
	var bnd int32
	if boundary {
		bnd = 1
	}
	b.emit(Record{At: at, Kind: KindPreempt, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(name)), C: bnd})
}

// Wakeup records a task becoming runnable, placed on target.
//
//simlint:hotpath
func (b *Buffer) Wakeup(at sim.Time, cpu, pid int, name string, target int) {
	if !b.Enabled(KindWakeup) {
		return
	}
	b.emit(Record{At: at, Kind: KindWakeup, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(name)), C: int32(target)})
}

// Migrate records a task moving between CPUs; to is -1 when the new
// CPU is not yet decided (pushed off by a shield/affinity change).
//
//simlint:hotpath
func (b *Buffer) Migrate(at sim.Time, cpu, pid int, name string, from, to int) {
	if !b.Enabled(KindMigrate) {
		return
	}
	b.emit(Record{At: at, Kind: KindMigrate, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(name)), C: int32(from), D: int32(to)})
}

// SyscallEnter records a task entering the kernel.
//
//simlint:hotpath
func (b *Buffer) SyscallEnter(at sim.Time, cpu, pid int, task, call string) {
	if !b.Enabled(KindSyscallEnter) {
		return
	}
	b.emit(Record{At: at, Kind: KindSyscallEnter, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(task)), C: int32(b.Intern(call))})
}

// SyscallExit records a task returning to user mode.
//
//simlint:hotpath
func (b *Buffer) SyscallExit(at sim.Time, cpu, pid int, task, call string) {
	if !b.Enabled(KindSyscallExit) {
		return
	}
	b.emit(Record{At: at, Kind: KindSyscallExit, CPU: int32(cpu),
		A: int32(pid), B: int32(b.Intern(task)), C: int32(b.Intern(call))})
}

// LockContend records a CPU starting to spin on a held lock.
//
//simlint:hotpath
func (b *Buffer) LockContend(at sim.Time, cpu int, lock string, holder int) {
	if !b.Enabled(KindLockContend) {
		return
	}
	b.emit(Record{At: at, Kind: KindLockContend, CPU: int32(cpu),
		A: int32(b.Intern(lock)), B: int32(holder)})
}

// LockAcquire records a contended lock being won after spinning.
//
//simlint:hotpath
func (b *Buffer) LockAcquire(at sim.Time, cpu int, lock string, spin sim.Duration) {
	if !b.Enabled(KindLockAcquire) {
		return
	}
	b.emit(Record{At: at, Kind: KindLockAcquire, CPU: int32(cpu),
		A: int32(b.Intern(lock)), B: clampNS(spin)})
}

// LockRelease records a lock being dropped after holding it for hold.
//
//simlint:hotpath
func (b *Buffer) LockRelease(at sim.Time, cpu int, lock string, hold sim.Duration) {
	if !b.Enabled(KindLockRelease) {
		return
	}
	b.emit(Record{At: at, Kind: KindLockRelease, CPU: int32(cpu),
		A: int32(b.Intern(lock)), B: clampNS(hold)})
}

// Shield records a shield mask transition for one dimension ("procs",
// "irqs" or "ltmr"). Masks are truncated to their low 32 bits.
//
//simlint:hotpath
func (b *Buffer) Shield(at sim.Time, dim string, old, new uint64) {
	if !b.Enabled(KindShield) {
		return
	}
	b.emit(Record{At: at, Kind: KindShield, CPU: -1,
		A: int32(b.Intern(dim)), B: int32(uint32(old)), C: int32(uint32(new))})
}

// TimerTick records a local timer tick being handled.
//
//simlint:hotpath
func (b *Buffer) TimerTick(at sim.Time, cpu int) {
	if !b.Enabled(KindTimerTick) {
		return
	}
	b.emit(Record{At: at, Kind: KindTimerTick, CPU: int32(cpu)})
}

// TimerExpire records the timer wheel expiring count timers on a tick.
//
//simlint:hotpath
func (b *Buffer) TimerExpire(at sim.Time, cpu, count int, jiffies uint64) {
	if !b.Enabled(KindTimerExpire) {
		return
	}
	b.emit(Record{At: at, Kind: KindTimerExpire, CPU: int32(cpu),
		A: int32(count), B: int32(uint32(jiffies))})
}

// --- legacy string API ---

// Emit appends a pre-formatted record. Legacy API: prefer the typed
// emitters; records stored this way render Msg verbatim.
func (b *Buffer) Emit(at sim.Time, cpu int, kind Kind, msg string) {
	if !b.Enabled(kind) {
		return
	}
	b.emit(Record{At: at, Kind: kind, CPU: int32(cpu), Msg: b.Intern(msg)})
}

// Emitf is Emit with fmt.Sprintf formatting. The format cost is paid
// only when the record would actually be retained: a nil, disabled, or
// filtering buffer short-circuits before formatting.
func (b *Buffer) Emitf(at sim.Time, cpu int, kind Kind, format string, args ...interface{}) {
	if !b.Enabled(kind) {
		return
	}
	b.emit(Record{At: at, Kind: kind, CPU: int32(cpu), Msg: b.Intern(fmt.Sprintf(format, args...))})
}

// --- readers ---

// Seq returns the number of records ever emitted (the newest record's
// sequence number).
func (b *Buffer) Seq() uint64 {
	if b == nil {
		return 0
	}
	return b.seq
}

// Len returns the number of retained records across all rings.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	n := 0
	for i := range b.rings {
		n += len(b.rings[i].recs)
	}
	return n
}

// Dropped returns how many records were overwritten across all rings.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	var n uint64
	for i := range b.rings {
		n += b.rings[i].dropped
	}
	return n
}

// DroppedOn returns how many records were overwritten on one CPU's
// ring (cpu -1 is the global ring).
func (b *Buffer) DroppedOn(cpu int) uint64 {
	if b == nil {
		return 0
	}
	idx := cpu + 1
	if idx < 0 || idx >= len(b.rings) {
		return 0
	}
	return b.rings[idx].dropped
}

// AppendSince appends to dst every retained record with Seq > since,
// merged across the per-CPU rings in sequence (= chronological) order,
// and returns the extended slice plus the number of matching records
// that were already overwritten. Passing the previous call's last Seq
// makes this a cursor over the stream; with a caller-reused dst it is
// allocation-free in steady state.
func (b *Buffer) AppendSince(dst []Record, since uint64) ([]Record, uint64) {
	if b == nil {
		return dst, 0
	}
	start := len(dst)
	for i := range b.rings {
		for _, r := range b.rings[i].recs {
			if r.Seq > since {
				dst = append(dst, r)
			}
		}
	}
	got := dst[start:]
	sort.Slice(got, func(i, j int) bool { return got[i].Seq < got[j].Seq })
	var lost uint64
	if b.seq > since {
		lost = b.seq - since - uint64(len(got))
	}
	return dst, lost
}

// Records returns all retained records in chronological order.
func (b *Buffer) Records() []Record {
	if b == nil {
		return nil
	}
	out, _ := b.AppendSince(nil, 0)
	return out
}

// --- lazy rendering ---

// Format renders the record's message from its typed arguments (or its
// interned legacy message). This is the only place argument semantics
// are turned into text, and it runs on the reader, never at emit.
func (b *Buffer) Format(r Record) string {
	if r.Msg != 0 {
		return b.Name(r.Msg)
	}
	switch r.Kind {
	case KindIRQRaise:
		return fmt.Sprintf("irq %d (%s) -> cpu%d", r.A, b.Name(NameID(r.B)), r.C)
	case KindIRQEnter, KindIRQExit:
		return fmt.Sprintf("irq %d (%s)", r.A, b.Name(NameID(r.B)))
	case KindSoftirqEnter:
		return fmt.Sprintf("run %v", sim.Duration(r.A))
	case KindSoftirqExit:
		return fmt.Sprintf("ran %v", sim.Duration(r.A))
	case KindSwitch:
		return fmt.Sprintf("switch to %s/%d prio %d", b.Name(NameID(r.B)), r.A, r.C)
	case KindPreempt:
		if r.C != 0 {
			return fmt.Sprintf("boundary preempt %s/%d", b.Name(NameID(r.B)), r.A)
		}
		return fmt.Sprintf("preempt %s/%d", b.Name(NameID(r.B)), r.A)
	case KindWakeup:
		return fmt.Sprintf("%s/%d -> cpu%d", b.Name(NameID(r.B)), r.A, r.C)
	case KindMigrate:
		if r.D < 0 {
			return fmt.Sprintf("%s/%d off cpu%d", b.Name(NameID(r.B)), r.A, r.C)
		}
		return fmt.Sprintf("%s/%d cpu%d -> cpu%d", b.Name(NameID(r.B)), r.A, r.C, r.D)
	case KindSyscallEnter, KindSyscallExit:
		return fmt.Sprintf("%s/%d %s", b.Name(NameID(r.B)), r.A, b.Name(NameID(r.C)))
	case KindLockContend:
		return fmt.Sprintf("spin on %s (holder cpu%d)", b.Name(NameID(r.A)), r.B)
	case KindLockAcquire:
		return fmt.Sprintf("acquired %s after %v", b.Name(NameID(r.A)), sim.Duration(r.B))
	case KindLockRelease:
		return fmt.Sprintf("released %s held %v", b.Name(NameID(r.A)), sim.Duration(r.B))
	case KindShield:
		return fmt.Sprintf("%s %#x -> %#x", b.Name(NameID(r.A)), uint32(r.B), uint32(r.C))
	case KindTimerTick:
		return "tick"
	case KindTimerExpire:
		return fmt.Sprintf("%d timers expired (jiffies %d)", r.A, uint32(r.B))
	default:
		return ""
	}
}

// Line renders the record as a dmesg-like single line.
func (b *Buffer) Line(r Record) string {
	return fmt.Sprintf("[%12.6f] cpu%d %-12s %s", r.At.Seconds(), r.CPU, r.Kind, b.Format(r))
}

// Dump renders all retained records, one per line.
func (b *Buffer) Dump() string {
	var s strings.Builder
	for _, r := range b.Records() {
		s.WriteString(b.Line(r))
		s.WriteByte('\n')
	}
	return s.String()
}
