// Package trace provides a bounded ring buffer of simulation events, the
// moral equivalent of a kernel trace buffer. The kernel model emits records
// for interrupts, context switches, lock contention and shield transitions;
// tools and tests read them back to explain where latency went.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds emitted by the kernel model.
const (
	KindIRQEnter Kind = iota
	KindIRQExit
	KindSoftirq
	KindSwitch
	KindWakeup
	KindSyscallEnter
	KindSyscallExit
	KindLockContend
	KindLockAcquire
	KindShield
	KindMigrate
	KindTimerTick
	KindUser
	numKinds
)

var kindNames = [numKinds]string{
	"irq-enter", "irq-exit", "softirq", "switch", "wakeup",
	"sys-enter", "sys-exit", "lock-contend", "lock-acquire",
	"shield", "migrate", "tick", "user",
}

// String returns a short name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one trace entry.
type Record struct {
	At   sim.Time
	CPU  int
	Kind Kind
	Msg  string
}

// String renders the record in a dmesg-like single line.
func (r Record) String() string {
	return fmt.Sprintf("[%12.6f] cpu%d %-12s %s", r.At.Seconds(), r.CPU, r.Kind, r.Msg)
}

// Buffer is a fixed-capacity ring of Records. A nil *Buffer is valid and
// discards everything, so tracing can be left out of hot paths at zero
// cost with a single nil check.
type Buffer struct {
	records []Record
	next    int
	wrapped bool
	dropped uint64
	filter  map[Kind]bool // nil means all kinds
}

// NewBuffer returns a ring holding at most capacity records.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{records: make([]Record, 0, capacity)}
}

// SetFilter restricts recording to the given kinds. Passing none clears
// the filter.
func (b *Buffer) SetFilter(kinds ...Kind) {
	if b == nil {
		return
	}
	if len(kinds) == 0 {
		b.filter = nil
		return
	}
	b.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		b.filter[k] = true
	}
}

// Emit appends a record, overwriting the oldest when full.
func (b *Buffer) Emit(at sim.Time, cpu int, kind Kind, msg string) {
	if b == nil {
		return
	}
	if b.filter != nil && !b.filter[kind] {
		return
	}
	r := Record{At: at, CPU: cpu, Kind: kind, Msg: msg}
	if len(b.records) < cap(b.records) {
		b.records = append(b.records, r)
		return
	}
	b.records[b.next] = r
	b.next = (b.next + 1) % len(b.records)
	b.wrapped = true
	b.dropped++
}

// Emitf is Emit with fmt.Sprintf formatting, skipped entirely when the
// buffer is nil.
func (b *Buffer) Emitf(at sim.Time, cpu int, kind Kind, format string, args ...interface{}) {
	if b == nil {
		return
	}
	b.Emit(at, cpu, kind, fmt.Sprintf(format, args...))
}

// Records returns the retained records in chronological order.
func (b *Buffer) Records() []Record {
	if b == nil {
		return nil
	}
	if !b.wrapped {
		out := make([]Record, len(b.records))
		copy(out, b.records)
		return out
	}
	out := make([]Record, 0, len(b.records))
	out = append(out, b.records[b.next:]...)
	out = append(out, b.records[:b.next]...)
	return out
}

// Dropped returns how many records were overwritten.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Len returns the number of retained records.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.records)
}

// Dump renders all retained records, one per line.
func (b *Buffer) Dump() string {
	var s strings.Builder
	for _, r := range b.Records() {
		s.WriteString(r.String())
		s.WriteByte('\n')
	}
	return s.String()
}
